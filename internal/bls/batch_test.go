package bls

import (
	"crypto/rand"
	"errors"
	"fmt"
	"testing"

	"repro/internal/curve"
	"repro/internal/pairing"
)

func makeBatch(t testing.TB, key *PrivateKey, n int) ([][]byte, []*curve.Point) {
	t.Helper()
	msgs := make([][]byte, n)
	sigs := make([]*curve.Point, n)
	for i := range msgs {
		msgs[i] = []byte(fmt.Sprintf("message %d", i))
		sig, err := key.Sign(msgs[i])
		if err != nil {
			t.Fatal(err)
		}
		sigs[i] = sig
	}
	return msgs, sigs
}

func TestBatchVerifyAcceptsHonestBatch(t *testing.T) {
	pp := toyParams(t)
	key, err := GenerateKey(rand.Reader, pp)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 2, 7, 32} {
		msgs, sigs := makeBatch(t, key, n)
		if err := key.Public.BatchVerify(rand.Reader, msgs, sigs); err != nil {
			t.Fatalf("honest batch of %d rejected: %v", n, err)
		}
	}
}

func TestBatchVerifyRejectsForgedMember(t *testing.T) {
	pp := toyParams(t)
	key, err := GenerateKey(rand.Reader, pp)
	if err != nil {
		t.Fatal(err)
	}
	msgs, sigs := makeBatch(t, key, 8)

	// A single corrupted signature must sink the whole batch.
	sigs[5] = sigs[5].Add(pp.Generator())
	err = key.Public.BatchVerify(rand.Reader, msgs, sigs)
	if !errors.Is(err, ErrInvalidSignature) {
		t.Fatalf("batch with forged member returned %v", err)
	}

	// A valid signature attached to the wrong message must also sink it.
	msgs, sigs = makeBatch(t, key, 8)
	sigs[2], sigs[3] = sigs[3], sigs[2]
	err = key.Public.BatchVerify(rand.Reader, msgs, sigs)
	if !errors.Is(err, ErrInvalidSignature) {
		t.Fatalf("batch with swapped signatures returned %v", err)
	}
}

func TestBatchVerifyRejectsMalformedInput(t *testing.T) {
	pp := toyParams(t)
	key, err := GenerateKey(rand.Reader, pp)
	if err != nil {
		t.Fatal(err)
	}
	msgs, sigs := makeBatch(t, key, 2)

	if err := key.Public.BatchVerify(rand.Reader, msgs, sigs[:1]); err == nil {
		t.Error("length mismatch accepted")
	}
	if err := key.Public.BatchVerify(rand.Reader, nil, nil); err == nil {
		t.Error("empty batch accepted")
	}
	bad := append([]*curve.Point{}, sigs...)
	bad[1] = pp.Curve().Infinity()
	if err := key.Public.BatchVerify(rand.Reader, msgs, bad); !errors.Is(err, ErrInvalidSignature) {
		t.Errorf("infinity member returned %v", err)
	}
	bad[1] = nil
	if err := key.Public.BatchVerify(rand.Reader, msgs, bad); !errors.Is(err, ErrInvalidSignature) {
		t.Errorf("nil member returned %v", err)
	}
}

func benchKey(b *testing.B) *PrivateKey {
	b.Helper()
	pp, err := pairing.Paper()
	if err != nil {
		b.Fatal(err)
	}
	key, err := GenerateKey(rand.Reader, pp)
	if err != nil {
		b.Fatal(err)
	}
	return key
}

func BenchmarkVerify(b *testing.B) {
	key := benchKey(b)
	msgs, sigs := makeBatch(b, key, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := key.Public.Verify(msgs[0], sigs[0]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSequentialVerify32 is the baseline the ≥3× BatchVerify32
// acceptance criterion compares against.
func BenchmarkSequentialVerify32(b *testing.B) {
	key := benchKey(b)
	msgs, sigs := makeBatch(b, key, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range msgs {
			if err := key.Public.Verify(msgs[j], sigs[j]); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkBatchVerify32(b *testing.B) {
	key := benchKey(b)
	msgs, sigs := makeBatch(b, key, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := key.Public.BatchVerify(rand.Reader, msgs, sigs); err != nil {
			b.Fatal(err)
		}
	}
}

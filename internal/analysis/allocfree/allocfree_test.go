package allocfree_test

import (
	"testing"

	"repro/internal/analysis/allocfree"
	"repro/internal/analysis/analysistest"
)

func TestAllocFree(t *testing.T) {
	analysistest.Run(t, "testdata", allocfree.Analyzer,
		"repro/internal/hotbad",
		"repro/internal/hotgood",
	)
}

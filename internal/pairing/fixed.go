package pairing

import (
	"fmt"
	"math/big"
	"sync"

	"repro/internal/curve"
	"repro/internal/gf"
)

// Fixed parameter sets. Each was produced by Generate (see cmd/pkgen
// -genparams) and smoke-checked for bilinearity and non-degeneracy at
// generation time; tests re-verify both properties.
//
//   - toy:   |q| = 32,  |p| = 96  — unit/property tests that need thousands
//     of pairings. NOT secure; never use outside tests.
//   - fast:  |q| = 128, |p| = 256 — integration tests and examples.
//   - paper: |q| = 160, |p| = 512 — the sizes the paper compares against
//     1024-bit IB-mRSA ("one can currently have 512 or even 160 bits private
//     keys", §4.1).
type fixedSet struct {
	name         string
	p, q, gx, gy string
}

var fixedSets = map[string]fixedSet{
	"toy": {
		name: "toy",
		p:    "c88410b59ac4fa20d9a0256b",
		q:    "fd51d491",
		gx:   "439642cb788f04772522a06e",
		gy:   "b0f96e67ff762fadf0f943bb",
	},
	"fast": {
		name: "fast",
		p:    "db19579dd2a906bb3f2f4f74c236e52c70115d99c09f7c474e96cdbe63e4da07",
		q:    "e10324209a11be3de5ba91918d7c367d",
		gx:   "b1a03d1eeb0fc48c577f8e57589b19bb6dabb28efe2320ca70b89e946156eeef",
		gy:   "4d7b0d2756afb0dd83d8aa8a2a66f6cb69bb0ca63aae1e9e82652d6221ac8e9c",
	},
	"paper": {
		name: "paper",
		p:    "b282da5c02935d5836473139df6751ee8e1fb07c917309c04088843b36435876d65dd173ce4ac63f883c05a59ad3a134e30ef32607e2a49c71e515d4dcc47eef",
		q:    "d766107fb0eace0a6ccd9d42e9492ba8bf2298ed",
		gx:   "46a67b1ebf67cc2e1d4eccd007c264f52a9eedee98368190842a1445eaf78511ef000fab6edf3a9b09b36691914f114c13063aef9f9bb877e324158e18965153",
		gy:   "17603521cbdc731424ee3aae867d4a5625f73d148f517159289e80b4c5599a7a0061a0b6cd9fbb124ef8bef644edcd7ccc5185145d6453c001b8800e41f3724a",
	},
}

var (
	fixedOnce  sync.Once
	fixedCache map[string]*Params
	fixedErr   error
)

func loadFixed() {
	fixedCache = make(map[string]*Params, len(fixedSets))
	for key, fs := range fixedSets {
		pp, err := buildFixed(fs)
		if err != nil {
			fixedErr = fmt.Errorf("fixed parameter set %q: %w", key, err)
			return
		}
		fixedCache[key] = pp
	}
}

func buildFixed(fs fixedSet) (*Params, error) {
	p, ok := new(big.Int).SetString(fs.p, 16)
	if !ok {
		return nil, fmt.Errorf("bad p constant")
	}
	q, ok := new(big.Int).SetString(fs.q, 16)
	if !ok {
		return nil, fmt.Errorf("bad q constant")
	}
	gx, ok := new(big.Int).SetString(fs.gx, 16)
	if !ok {
		return nil, fmt.Errorf("bad gx constant")
	}
	gy, ok := new(big.Int).SetString(fs.gy, 16)
	if !ok {
		return nil, fmt.Errorf("bad gy constant")
	}
	cv, err := curve.New(p, q)
	if err != nil {
		return nil, err
	}
	fld, err := gf.NewField(p)
	if err != nil {
		return nil, err
	}
	gen, err := cv.NewPoint(gx, gy)
	if err != nil {
		return nil, err
	}
	if !gen.InSubgroup() {
		return nil, fmt.Errorf("generator escapes order-q subgroup")
	}
	tail := new(big.Int).Add(p, big.NewInt(1))
	tail.Div(tail, q)
	return &Params{
		curve:    cv,
		field:    fld,
		gen:      gen,
		expTail:  tail,
		qBits:    q.BitLen(),
		security: fs.name,
	}, nil
}

func fixed(name string) (*Params, error) {
	fixedOnce.Do(loadFixed)
	if fixedErr != nil {
		return nil, fixedErr
	}
	return fixedCache[name], nil
}

// Toy returns the 32/96-bit test-only parameter set. It fails only if the
// embedded constants were corrupted.
func Toy() (*Params, error) { return fixed("toy") }

// Fast returns the 128/256-bit parameter set used by integration tests and
// examples.
func Fast() (*Params, error) { return fixed("fast") }

// Paper returns the 160/512-bit parameter set matching the sizes the paper
// uses when comparing the mediated IBE and GDH schemes against 1024-bit
// IB-mRSA.
func Paper() (*Params, error) { return fixed("paper") }

// ByName returns a fixed parameter set by its label ("toy", "fast",
// "paper").
func ByName(name string) (*Params, error) {
	fixedOnce.Do(loadFixed)
	if fixedErr != nil {
		return nil, fixedErr
	}
	pp, ok := fixedCache[name]
	if !ok {
		return nil, fmt.Errorf("pairing: unknown parameter set %q", name)
	}
	return pp, nil
}

package bench

import (
	"bytes"
	"crypto/rand"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"math"
	"math/big"
	"net"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bf"
	"repro/internal/bls"
	"repro/internal/core"
	"repro/internal/curve"
	"repro/internal/pairing"
	"repro/internal/sem"
	"repro/internal/wire"
)

// BaselineEntry is one timed primitive in a baseline snapshot.
// AllocsPerOp is the mean number of heap allocations per iteration — nil in
// snapshots taken before the column existed, so comparisons can tell
// "unmeasured" from a genuine zero (the limb-arithmetic entries are gated at
// exactly zero).
type BaselineEntry struct {
	Name        string   `json:"name"`
	NsPerOp     float64  `json:"ns_per_op"`
	Iters       int      `json:"iters"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
}

// BaselineReport is a machine-readable snapshot of the group-arithmetic
// primitives the schemes are built from. A committed snapshot gives future
// changes a reference point: rerun with the same parameter set and compare
// ratios (absolute numbers are machine-dependent; the ratios between entries
// and between two runs on one machine are the signal).
type BaselineReport struct {
	Params    string          `json:"params"`
	QBits     int             `json:"q_bits"`
	PBits     int             `json:"p_bits"`
	GoVersion string          `json:"go_version"`
	GOARCH    string          `json:"goarch"`
	Entries   []BaselineEntry `json:"entries"`
}

// benchScalar derives a fixed sub-q scalar from a label. Bench inputs must
// be deterministic: the ladder and wNAF workloads' operation counts — and
// therefore their allocation columns — scale with the scalar's bit
// pattern, so a fresh random scalar per run makes snapshot-vs-check
// comparisons inherently flaky.
//
//cryptolint:vartime (bench-fixture derivation from a public label; nothing secret flows in)
func benchScalar(label string, q *big.Int) *big.Int {
	h := sha256.New()
	var buf []byte
	for ctr := byte(0); len(buf) < q.BitLen()/8+16; ctr++ {
		h.Reset()
		h.Write([]byte(label))
		h.Write([]byte{ctr})
		buf = h.Sum(buf)
	}
	k := new(big.Int).SetBytes(buf)
	return k.Mod(k, q)
}

// Baseline times the primitive operations behind every scheme: the pairing
// (optimized and full-Miller oracle), the three scalar-multiplication
// strategies, fixed-base vs generic GT exponentiation, and one BF FullIdent
// encrypt/decrypt pair. Each body runs for at least minIters iterations and
// minDuration wall time, whichever is larger.
func Baseline(pp *pairing.Params, minIters int, minDuration time.Duration) (*BaselineReport, error) {
	P := pp.Generator()
	Q, err := pp.Curve().HashToPoint("baseline", []byte("x"))
	if err != nil {
		return nil, err
	}
	k := benchScalar("bench.k", pp.Q())
	g, err := pp.Pair(P, Q)
	if err != nil {
		return nil, err
	}
	gtTab, err := pairing.NewGTTable(g)
	if err != nil {
		return nil, err
	}
	fp, err := pp.NewFixedPair(P)
	if err != nil {
		return nil, err
	}
	pp.GeneratorMul(k) // build the lazy generator table outside the timers

	pkg, err := bf.Setup(rand.Reader, pp, 32)
	if err != nil {
		return nil, err
	}
	pub := pkg.Public()
	const id = "baseline@example.com"
	key, err := pkg.Extract(id)
	if err != nil {
		return nil, err
	}
	msg := make([]byte, 32)
	ct, err := pub.Encrypt(rand.Reader, id, msg)
	if err != nil {
		return nil, err
	}

	// Batch-kernel fixtures: a 256-member MSM input (Add-chain points, cheap
	// even at paper size; random sub-q scalars) and a 256-signature batch
	// under one key, plus 8 pairing pairs for the chunked Miller walk.
	cv := pp.Curve()
	const msmN = 256
	msmPts := make([]*curve.Point, msmN)
	msmKs := make([]*big.Int, msmN)
	chain := Q
	for i := 0; i < msmN; i++ {
		msmPts[i] = chain
		chain = chain.Add(Q)
		msmKs[i] = benchScalar(fmt.Sprintf("bench.msm.%d", i), pp.Q())
	}
	sk, err := bls.GenerateKey(rand.Reader, pp)
	if err != nil {
		return nil, err
	}
	const batchN = 256
	batchMsgs := make([][]byte, batchN)
	batchSigs := make([]*curve.Point, batchN)
	for i := 0; i < batchN; i++ {
		batchMsgs[i] = []byte(fmt.Sprintf("baseline batch message %d", i))
		if batchSigs[i], err = sk.Sign(batchMsgs[i]); err != nil {
			return nil, err
		}
	}
	mpPs := make([]*curve.Point, 8)
	mpQs := make([]*curve.Point, 8)
	for i := range mpPs {
		mpPs[i] = msmPts[2*i]
		mpQs[i] = msmPts[2*i+1]
	}

	// Protocol-v2 codec fixtures: a 64-item request frame round-tripped
	// through preallocated encoder/decoder state. These are the committed
	// zero-alloc gate on the wire hot path — their AllocsPerOp entries must
	// stay at exactly 0.
	const codecK = 64
	codecItems := make([]wire.ReqItem, codecK)
	codecPayload := make([]byte, 64)
	for i := range codecItems {
		codecItems[i] = wire.ReqItem{ID: []byte(id), Payload: codecPayload}
	}
	var codecEnc wire.FrameEncoder
	var codecDec wire.FrameDecoder
	codecFrame, err := codecEnc.EncodeRequest(1, codecItems, 0)
	if err != nil {
		return nil, err
	}
	codecReader := bytes.NewReader(codecFrame)

	// v1 comparator: the JSON-per-op frame the v2 codec replaces. One
	// request per frame, measured per op so wire.v1.* ÷ (wire.v2.*/64) is
	// the committed wire-path speedup.
	v1Req := &sem.Request{Op: sem.OpIBEToken, ID: id, Payload: codecPayload}
	var v1Buf bytes.Buffer
	if _, err := wire.WriteFrame(&v1Buf, v1Req); err != nil {
		return nil, err
	}
	v1Frame := append([]byte(nil), v1Buf.Bytes()...)
	v1Reader := bytes.NewReader(v1Frame)

	// SEM protocol fixtures: a live loopback daemon serving the IBE token
	// op, measured one request per round trip (v1-era cost model) and 64
	// requests per v2 batch frame. The committed pair documents the
	// batching speedup and gates it against regression.
	semWorld, err := newBaselineSEM(pp, id)
	if err != nil {
		return nil, err
	}
	defer semWorld.close()
	semIDs := make([]string, codecK)
	semUs := make([]*curve.Point, codecK)
	for i := range semIDs {
		semIDs[i] = id
		semUs[i] = ct.U
	}

	// Journal fixtures: a temp-dir JSONL journal for the durable append
	// path. Every iteration revokes a fresh identity so each op is a real
	// record append + fsync; the group16 variant drives 16 concurrent
	// writers per op, so journal.append ÷ (journal.append.group16/16) is
	// the committed group-commit coalescing factor. Timings are dominated
	// by fsync and vary wildly across filesystems — these entries are
	// informational and must stay outside any CI -check filter.
	journalDir, err := os.MkdirTemp("", "bench-journal-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(journalDir)
	benchJournal, err := core.OpenJournal(filepath.Join(journalDir, "revocations.jsonl"))
	if err != nil {
		return nil, err
	}
	defer benchJournal.Close()
	var journalCtr atomic.Uint64
	nextJournalID := func() string {
		return fmt.Sprintf("bench%08d@journal.test", journalCtr.Add(1))
	}

	// batchVerifySequential replays the pre-Pippenger batch loop through the
	// public API — full-order ScalarMul subgroup checks and per-member
	// accumulation — as the committed comparator for batchverify.256.
	batchVerifySequential := func() error {
		sAcc := cv.Infinity()
		tAcc := cv.Infinity()
		var buf [8]byte
		for i, sig := range batchSigs {
			if !sig.ScalarMul(cv.Q()).IsInfinity() {
				return fmt.Errorf("batch member %d outside G1", i)
			}
			ti, err := cv.HashToPointUncleared("GDH-SIG-H", batchMsgs[i])
			if err != nil {
				return err
			}
			if _, err := rand.Read(buf[:]); err != nil {
				return err
			}
			r := new(big.Int).SetBytes(buf[:])
			r.Add(r, big.NewInt(1))
			sAcc = sAcc.Add(sig.ScalarMul(r))
			tAcc = tAcc.Add(ti.ScalarMul(r))
		}
		hAcc := tAcc.ScalarMul(cv.Cofactor())
		prod, err := pp.MultiPair(
			[]*curve.Point{pp.Generator(), sk.Public.R.Neg()},
			[]*curve.Point{sAcc, hAcc},
		)
		if err != nil {
			return err
		}
		if !prod.IsOne() {
			return fmt.Errorf("sequential batch comparator rejected a valid batch")
		}
		return nil
	}

	// Field-layer bodies: the F_p² tower and the raw Montgomery limb ops it
	// is built from. These are the entries the zero-alloc gate watches.
	fld := pp.Field()
	e1 := fld.NewElement(P.X(), P.Y())
	e2 := fld.NewElement(Q.X(), Q.Y())
	eOut := fld.One()
	F := fld.Fp()
	fx, fy, fz := F.NewElt(), F.NewElt(), F.NewElt()
	if err := F.FromBig(fx, P.X()); err != nil {
		return nil, err
	}
	if err := F.FromBig(fy, Q.X()); err != nil {
		return nil, err
	}

	bodies := []struct {
		name string
		run  func() error
	}{
		{"fp.add", func() error { F.Add(fz, fx, fy); return nil }},
		{"fp.sub", func() error { F.Sub(fz, fx, fy); return nil }},
		{"fp.mul", func() error { F.Mul(fz, fx, fy); return nil }},
		{"fp.square", func() error { F.Square(fz, fx); return nil }},
		{"gf.mul", func() error { eOut.Mul(e1, e2); return nil }},
		{"gf.square", func() error { eOut.Square(e1); return nil }},
		{"pair", func() error { _, err := pp.Pair(P, Q); return err }},
		{"pair.full-miller", func() error { _, err := pp.PairFull(P, Q); return err }},
		{"pair.fixed", func() error { _, err := fp.Pair(Q); return err }},
		{"pair.fixed.precompute", func() error { _, err := pp.NewFixedPair(P); return err }},
		{"multipair.2", func() error {
			_, err := pp.MultiPair([]*curve.Point{P, Q}, []*curve.Point{Q, P})
			return err
		}},
		{"scalarmul.variable-wnaf", func() error { P.ScalarMul(k); return nil }},
		{"scalarmul.fixed-base", func() error { pp.GeneratorMul(k); return nil }},
		{"scalarmul.binary-ladder", func() error { P.ScalarMulBinary(k); return nil }},
		{"gtexp.square-multiply", func() error { _, err := g.Exp(k); return err }},
		{"gtexp.fixed-base", func() error { gtTab.Exp(k); return nil }},
		{"bf.encrypt", func() error { _, err := pub.Encrypt(rand.Reader, id, msg); return err }},
		{"bf.decrypt", func() error { _, err := pub.Decrypt(key, ct); return err }},
		{"msm.64", func() error {
			_, err := cv.MSM(msmKs[:64], msmPts[:64])
			return err
		}},
		{"msm.256", func() error {
			_, err := cv.MSM(msmKs, msmPts)
			return err
		}},
		{"msm.256.sequential", func() error {
			_, err := cv.MSMSequential(msmKs, msmPts)
			return err
		}},
		{"batchverify.256", func() error {
			return sk.Public.BatchVerify(rand.Reader, batchMsgs, batchSigs)
		}},
		{"batchverify.256.sequential", batchVerifySequential},
		{"multipair.8.parallel", func() error {
			_, err := pp.MultiPair(mpPs, mpQs)
			return err
		}},
		{"wire.v1.encode", func() error {
			v1Buf.Reset()
			_, err := wire.WriteFrame(&v1Buf, v1Req)
			return err
		}},
		{"wire.v1.decode", func() error {
			v1Reader.Reset(v1Frame)
			var req sem.Request
			_, err := wire.ReadFrame(v1Reader, &req)
			return err
		}},
		{"wire.v2.encode.64", func() error {
			_, err := codecEnc.EncodeRequest(1, codecItems, 0)
			return err
		}},
		{"wire.v2.decode.64", func() error {
			codecReader.Reset(codecFrame)
			_, _, _, err := codecDec.ReadRequest(codecReader, 0, 0)
			return err
		}},
		{"journal.append", func() error {
			return benchJournal.Revoke(nextJournalID(), "bench")
		}},
		{"journal.append.group16", func() error {
			var wg sync.WaitGroup
			errs := make([]error, 16)
			for w := range errs {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					errs[w] = benchJournal.Revoke(nextJournalID(), "bench")
				}(w)
			}
			wg.Wait()
			for _, e := range errs {
				if e != nil {
					return e
				}
			}
			return nil
		}},
		{"sem.token.single", func() error {
			_, err := semWorld.client.IBEToken(id, ct.U)
			return err
		}},
		{"sem.token.batch64", func() error {
			_, errs, err := semWorld.client.TokenBatch(semIDs, semUs)
			if err != nil {
				return err
			}
			for _, e := range errs {
				if e != nil {
					return e
				}
			}
			return nil
		}},
	}

	report := &BaselineReport{
		Params:    pp.Name(),
		QBits:     pp.Q().BitLen(),
		PBits:     pp.P().BitLen(),
		GoVersion: runtime.Version(),
		GOARCH:    runtime.GOARCH,
	}
	var m0, m1 runtime.MemStats
	for _, body := range bodies {
		// One unmeasured warm-up call so lazily-built shared state (comb
		// tables, window recodings, connection buffers) lands outside the
		// counted window — with few -quick iterations its one-time
		// allocations would otherwise smear the per-op allocs column.
		if err := body.run(); err != nil {
			return nil, fmt.Errorf("baseline %s (warm-up): %w", body.name, err)
		}
		iters, batch, passes := 0, 1, 0
		runtime.ReadMemStats(&m0)
		prevMallocs := m0.Mallocs
		minPassAllocs := math.Inf(1)
		var busy time.Duration
		for {
			t0 := time.Now()
			for j := 0; j < batch; j++ {
				if err := body.run(); err != nil {
					return nil, fmt.Errorf("baseline %s: %w", body.name, err)
				}
			}
			busy += time.Since(t0)
			iters += batch
			if batch == 1 && passes < 256 {
				// Per-pass malloc deltas: background allocation (GC workers,
				// idle servers left by earlier entries) only ever adds, so
				// for slow bodies with few total iterations the MINIMUM pass
				// is the clean per-op count — the mean smears badly at
				// -quick iteration counts. The memstats reads sit outside
				// the busy window so they cannot distort the timing column.
				passes++
				runtime.ReadMemStats(&m1)
				if d := float64(m1.Mallocs - prevMallocs); d < minPassAllocs {
					minPassAllocs = d
				}
				prevMallocs = m1.Mallocs
			}
			if busy >= minDuration && iters >= minIters {
				break
			}
			if batch == 1 && iters >= 64 && busy < minDuration/64 {
				// Sub-microsecond body (the field-layer entries): batch
				// iterations so the clock reads stop dominating the timing.
				batch = 256
			}
		}
		elapsed := busy
		runtime.ReadMemStats(&m1)
		// Rounded to 1e-4 so a stray background-runtime allocation across
		// millions of iterations does not smear the zero-alloc entries.
		allocs := float64(m1.Mallocs-m0.Mallocs) / float64(iters)
		if minPassAllocs < allocs {
			allocs = minPassAllocs
		}
		allocs = math.Round(allocs*1e4) / 1e4
		report.Entries = append(report.Entries, BaselineEntry{
			Name:        body.name,
			NsPerOp:     float64(elapsed.Nanoseconds()) / float64(iters),
			Iters:       iters,
			AllocsPerOp: &allocs,
		})
	}
	return report, nil
}

// baselineSEM is the minimal live SEM deployment behind the sem.token.*
// baseline entries: one loopback daemon serving the mediated-IBE token op
// for a single enrolled identity, and one connected (v2-negotiated) client.
type baselineSEM struct {
	server *sem.Server
	client *sem.Client
}

func newBaselineSEM(pp *pairing.Params, id string) (*baselineSEM, error) {
	reg := core.NewRegistry()
	mpkg, err := core.NewMediatedPKG(rand.Reader, pp, 32)
	if err != nil {
		return nil, err
	}
	ibeSEM := core.NewIBESEM(mpkg.Public(), reg)
	_, semHalf, err := mpkg.SplitExtract(rand.Reader, id)
	if err != nil {
		return nil, err
	}
	ibeSEM.Register(semHalf)
	srv, err := sem.NewServer(sem.Config{Registry: reg, IBE: ibeSEM, Pairing: pp})
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	go func() { _ = srv.Serve(ln) }()
	client, err := sem.Dial(ln.Addr().String(), pp, 10*time.Second)
	if err != nil {
		_ = srv.Close()
		return nil, err
	}
	return &baselineSEM{server: srv, client: client}, nil
}

func (b *baselineSEM) close() {
	_ = b.client.Close()
	_ = b.server.Close()
}

// JSON renders the report with stable formatting for committing to the repo.
func (r *BaselineReport) JSON() ([]byte, error) {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

package repl

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// Peer is the leader's view of one follower. internal/sem implements it
// over a SEM client connection; tests implement it in memory. Methods are
// called from a single replicator goroutine per peer, never concurrently.
type Peer interface {
	// ReplStatus asks the follower for its epoch and last durable seq.
	ReplStatus() (epoch, lastSeq uint64, err error)
	// ReplAppend ships a contiguous batch of records. The error is
	// ErrStaleEpoch (possibly wrapped) when the follower has adopted a
	// higher epoch — the deposed signal.
	ReplAppend(leaderEpoch uint64, recs []core.ReplRecord) error
	// ReplSnapshot ships one chunk of a full-state transfer.
	ReplSnapshot(c *SnapshotChunk) error
	Close() error
}

// LeaderConfig configures a replication leader.
type LeaderConfig struct {
	// Journal is the authoritative, sequenced log. Required.
	Journal *core.Journal
	// Epoch is the operator-assigned term, at least 1 (epoch 0 means "no
	// leader has ever spoken" and would disarm every fence). It must be at
	// least the epoch the journal replayed; a replacement leader must be
	// started strictly above its predecessor's epoch.
	Epoch uint64
	// Metrics, when set, registers the leader's series (per-peer acked-seq
	// and lag gauges, traffic counters, the deposed flag). Registration
	// happens inside NewLeader, before any replicator goroutine starts, so
	// there is no window where a goroutine races the counter wiring.
	Metrics *obs.Registry
	// Peers are the follower addresses. May be empty (a leader with no
	// followers is just a journal).
	Peers []string
	// Dial opens a connection to a peer. Required when Peers is non-empty.
	Dial func(addr string) (Peer, error)
	// Logf receives replication lifecycle events. Optional.
	Logf func(format string, args ...any)
	// RetryInterval is the reconnect/idle-poll cadence (default 500ms).
	RetryInterval time.Duration
	// AppendBatch caps records per ReplAppend call (default 256).
	AppendBatch int
	// SnapshotBatch caps entries per snapshot chunk (default 512).
	SnapshotBatch int
}

// Leader owns the revocation write path for a fleet: every mutation goes
// through its journal (which assigns the sequence number) and one
// goroutine per follower streams the growing log outward, switching to
// snapshot transfer when a follower is too far behind. If any follower
// turns out to have adopted a higher epoch, the leader knows it has been
// replaced: it stops replicating and refuses further mutations with
// ErrStaleEpoch, so a deposed leader fails loudly instead of diverging.
type Leader struct {
	cfg     LeaderConfig
	j       *core.Journal
	epoch   uint64
	deposed atomic.Bool

	closed   chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
	peers    []*peerState

	appends    *obs.Counter
	snapshots  *obs.Counter
	reconnects *obs.Counter
}

// peerState is the per-follower replication cursor.
type peerState struct {
	addr   string
	notify chan struct{}
	acked  atomic.Uint64 // highest seq the follower has durably applied
}

// NewLeader assigns the journal the configured epoch and starts one
// replicator per peer. It fails if the epoch would regress the journal —
// starting a "new" leader below an epoch the log has already seen is the
// operator error epoch fencing exists to catch.
func NewLeader(cfg LeaderConfig) (*Leader, error) {
	if cfg.Journal == nil {
		return nil, errors.New("repl: leader requires a journal")
	}
	if cfg.Epoch == 0 {
		return nil, errors.New("repl: leader epoch must be at least 1 (0 would disarm every follower fence)")
	}
	if len(cfg.Peers) > 0 && cfg.Dial == nil {
		return nil, errors.New("repl: leader with peers requires a dialer")
	}
	if cfg.RetryInterval <= 0 {
		cfg.RetryInterval = 500 * time.Millisecond
	}
	if cfg.AppendBatch <= 0 {
		cfg.AppendBatch = 256
	}
	if cfg.SnapshotBatch <= 0 {
		cfg.SnapshotBatch = 512
	}
	if err := cfg.Journal.SetEpoch(cfg.Epoch); err != nil {
		return nil, err
	}
	l := &Leader{
		cfg:    cfg,
		j:      cfg.Journal,
		epoch:  cfg.Epoch,
		closed: make(chan struct{}),
	}
	for _, addr := range cfg.Peers {
		l.peers = append(l.peers, &peerState{addr: addr, notify: make(chan struct{}, 1)})
	}
	// Register metrics before any replicator goroutine exists: the
	// goroutines read these counter fields, so wiring them afterwards would
	// be a data race. A nil registry still yields live (unregistered)
	// counters — the fields are never nil.
	l.instrument(cfg.Metrics)
	for _, p := range l.peers {
		l.wg.Add(1)
		go l.runPeer(p)
	}
	return l, nil
}

// instrument registers the leader's series with reg: per-peer acked-seq
// and lag gauges (the replication smoke's convergence probes), traffic
// counters, and the deposed flag. Called from NewLeader only, before the
// replicator goroutines start.
func (l *Leader) instrument(reg *obs.Registry) {
	l.appends = reg.Counter("repl_leader_appends_total", "record batches shipped to followers")
	l.snapshots = reg.Counter("repl_leader_snapshots_total", "snapshot transfers started")
	l.reconnects = reg.Counter("repl_leader_reconnects_total", "follower connections re-established")
	if reg == nil {
		return
	}
	reg.GaugeFunc("repl_leader_deposed", "1 when a follower reported a higher epoch and this leader stopped", func() int64 {
		if l.deposed.Load() {
			return 1
		}
		return 0
	})
	for _, p := range l.peers {
		p := p
		reg.GaugeFunc("repl_peer_acked_seq", "highest seq the follower has durably applied",
			func() int64 { return int64(p.acked.Load()) }, obs.Label{Key: "peer", Value: p.addr})
		reg.GaugeFunc("repl_peer_lag", "records the follower is behind the leader",
			func() int64 {
				last := l.j.LastSeq()
				acked := p.acked.Load()
				if acked >= last {
					return 0
				}
				return int64(last - acked)
			}, obs.Label{Key: "peer", Value: p.addr})
	}
}

// Epoch returns the leader's operating epoch.
func (l *Leader) Epoch() uint64 { return l.epoch }

// Deposed reports whether a follower has adopted a higher epoch.
func (l *Leader) Deposed() bool { return l.deposed.Load() }

// Revoke appends a revocation to the authoritative journal (durably, via
// group commit) and wakes the replicators. A deposed leader refuses with
// ErrStaleEpoch — the fleet has moved to a successor.
func (l *Leader) Revoke(id, reason string) error {
	if l.deposed.Load() {
		return fmt.Errorf("%w: leader at epoch %d was replaced", ErrStaleEpoch, l.epoch)
	}
	if err := l.j.Revoke(id, reason); err != nil {
		return err
	}
	l.kick()
	return nil
}

// Unrevoke appends a reinstatement and wakes the replicators.
func (l *Leader) Unrevoke(id string) error {
	if l.deposed.Load() {
		return fmt.Errorf("%w: leader at epoch %d was replaced", ErrStaleEpoch, l.epoch)
	}
	if err := l.j.Unrevoke(id); err != nil {
		return err
	}
	l.kick()
	return nil
}

// Journal returns the authoritative journal.
func (l *Leader) Journal() *core.Journal { return l.j }

// AckedSeqs returns each follower's last acknowledged sequence number.
func (l *Leader) AckedSeqs() map[string]uint64 {
	out := make(map[string]uint64, len(l.peers))
	for _, p := range l.peers {
		out[p.addr] = p.acked.Load()
	}
	return out
}

// Close stops the replicators and waits for them to exit.
func (l *Leader) Close() error {
	l.stopOnce.Do(func() { close(l.closed) })
	l.wg.Wait()
	return nil
}

func (l *Leader) kick() {
	for _, p := range l.peers {
		select {
		case p.notify <- struct{}{}:
		default:
		}
	}
}

func (l *Leader) logf(format string, args ...any) {
	if l.cfg.Logf != nil {
		l.cfg.Logf(format, args...)
	}
}

// sleep waits d or until Close; it reports whether the leader is still
// running.
func (l *Leader) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-l.closed:
		return false
	case <-t.C:
		return true
	}
}

// depose marks the leader replaced. It keeps serving reads — the fleet's
// registry state is still valid — but every replicator stops and further
// mutations fail typed.
func (l *Leader) depose(addr string, peerEpoch uint64) {
	if l.deposed.CompareAndSwap(false, true) {
		l.logf("repl: deposed — follower %s is at epoch %d, we are at %d", addr, peerEpoch, l.epoch)
	}
}

// runPeer is the per-follower replicator: dial, sync position, stream,
// reconnect on failure — forever, until Close or deposition.
func (l *Leader) runPeer(p *peerState) {
	defer l.wg.Done()
	first := true
	for {
		select {
		case <-l.closed:
			return
		default:
		}
		if l.deposed.Load() {
			return
		}
		if !first {
			l.reconnects.Inc()
		}
		first = false
		peer, err := l.cfg.Dial(p.addr)
		if err != nil {
			l.logf("repl: dial follower %s: %v", p.addr, err)
			if !l.sleep(l.cfg.RetryInterval) {
				return
			}
			continue
		}
		l.servePeer(p, peer)
		_ = peer.Close()
		if !l.sleep(l.cfg.RetryInterval) {
			return
		}
	}
}

// servePeer drives one connection until it breaks, the leader closes, or
// deposition. It first learns the follower's position and checks that its
// history can actually be extended by ours (log matching), then loops:
// stream the tail suffix past the follower's ack, fall back to a
// snapshot when the journal has compacted past it, idle on the notify
// channel when caught up.
func (l *Leader) servePeer(p *peerState, peer Peer) {
	epoch, lastSeq, err := peer.ReplStatus()
	if err != nil {
		l.logf("repl: status from follower %s: %v", p.addr, err)
		return
	}
	if epoch > l.epoch {
		l.depose(p.addr, epoch)
		return
	}
	acked := lastSeq
	if epoch < l.epoch || lastSeq > l.j.LastSeq() {
		// Log matching: a sequence number identifies a record only within
		// one leader's history. A follower still below our epoch may hold
		// records we never issued — a pre-replication journal whose seqs
		// were self-assigned at replay, or appends from a predecessor whose
		// history we did not inherit — and a follower *ahead* of our
		// LastSeq certainly does. Streaming a suffix past such a position
		// would make the seq counters "converge" while the histories
		// silently diverge (revocations permanently withheld, lag reading
		// zero). First contact with an unverifiable position is therefore
		// always a snapshot install: it replaces the follower's history
		// wholesale and durably adopts our epoch, so the not_leader write
		// fence is armed across restarts from the fleet's first moments.
		seq, err := l.sendSnapshot(peer)
		if err != nil {
			if errors.Is(err, ErrStaleEpoch) {
				l.depose(p.addr, 0)
			} else {
				l.logf("repl: resync snapshot to follower %s (epoch %d, seq %d): %v", p.addr, epoch, lastSeq, err)
			}
			return
		}
		acked = seq
	}
	p.acked.Store(acked)
	for {
		select {
		case <-l.closed:
			return
		default:
		}
		if l.deposed.Load() {
			return
		}
		recs, ok := l.j.TailSince(acked)
		if !ok {
			seq, err := l.sendSnapshot(peer)
			if err != nil {
				if errors.Is(err, ErrStaleEpoch) {
					l.depose(p.addr, 0)
				} else {
					l.logf("repl: snapshot to follower %s: %v", p.addr, err)
				}
				return
			}
			acked = seq
			p.acked.Store(acked)
			continue
		}
		if len(recs) == 0 {
			// Caught up. Wait for new appends; the timer is a belt-and-
			// braces poll in case a notify was consumed by a batch that
			// was already in flight.
			t := time.NewTimer(l.cfg.RetryInterval)
			select {
			case <-l.closed:
				t.Stop()
				return
			case <-p.notify:
			case <-t.C:
			}
			t.Stop()
			continue
		}
		for len(recs) > 0 {
			n := len(recs)
			if n > l.cfg.AppendBatch {
				n = l.cfg.AppendBatch
			}
			if err := peer.ReplAppend(l.epoch, recs[:n]); err != nil {
				switch {
				case errors.Is(err, ErrStaleEpoch):
					l.depose(p.addr, 0)
				case errors.Is(err, ErrSeqGap):
					// The follower moved (e.g. was wiped) under us; resync
					// from its reported position on the next connection.
					l.logf("repl: follower %s reports a gap, resyncing: %v", p.addr, err)
				default:
					l.logf("repl: append to follower %s: %v", p.addr, err)
				}
				return
			}
			l.appends.Inc()
			acked = recs[n-1].Seq
			p.acked.Store(acked)
			recs = recs[n:]
		}
	}
}

// sendSnapshot streams the full state in chunks and returns the sequence
// number the follower stands at afterwards.
func (l *Leader) sendSnapshot(peer Peer) (uint64, error) {
	epoch, seq, entries := l.j.SnapshotState()
	l.snapshots.Inc()
	chunks := (len(entries) + l.cfg.SnapshotBatch - 1) / l.cfg.SnapshotBatch
	if chunks == 0 {
		chunks = 1 // an empty state still needs one chunk to carry the seq
	}
	for i := 0; i < chunks; i++ {
		lo := i * l.cfg.SnapshotBatch
		hi := lo + l.cfg.SnapshotBatch
		if hi > len(entries) {
			hi = len(entries)
		}
		c := &SnapshotChunk{
			Epoch:   epoch,
			BaseSeq: seq,
			Total:   len(entries),
			Index:   i,
			Chunks:  chunks,
			Entries: entries[lo:hi],
		}
		if err := peer.ReplSnapshot(c); err != nil {
			return 0, err
		}
	}
	return seq, nil
}

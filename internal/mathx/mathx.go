// Package mathx provides the number-theoretic primitives that underpin the
// pairing, curve and RSA substrates: modular square roots, Jacobi symbols,
// prime and safe-prime generation, and misc big.Int helpers.
//
// Everything operates on math/big integers; callers own the values they pass
// in and receive fresh values back (no aliasing of inputs).
//
//cryptolint:vartime (big.Int utility arithmetic (prime generation, CRT, sampling); timing is accepted as value-dependent)
package mathx

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"math/big"
)

var (
	// ErrNoSquareRoot is returned by SqrtModP when the operand is a
	// quadratic non-residue modulo p.
	ErrNoSquareRoot = errors.New("mathx: no square root exists")

	// ErrNotInvertible is returned by InverseMod when the operand shares a
	// factor with the modulus.
	ErrNotInvertible = errors.New("mathx: element is not invertible")
)

var (
	zero  = big.NewInt(0)
	one   = big.NewInt(1)
	two   = big.NewInt(2)
	three = big.NewInt(3)
	four  = big.NewInt(4)
)

// Jacobi returns the Jacobi symbol (x/y). y must be odd and positive.
func Jacobi(x, y *big.Int) int {
	return big.Jacobi(x, y)
}

// IsQuadraticResidue reports whether a is a quadratic residue modulo the odd
// prime p. Zero counts as a residue (its root is zero).
func IsQuadraticResidue(a, p *big.Int) bool {
	m := new(big.Int).Mod(a, p)
	if m.Sign() == 0 {
		return true
	}
	return big.Jacobi(m, p) == 1
}

// SqrtModP computes a square root of a modulo the odd prime p.
// For p ≡ 3 (mod 4) it uses the single-exponentiation fast path
// a^((p+1)/4); otherwise it falls back to big.Int.ModSqrt
// (Tonelli-Shanks). It returns ErrNoSquareRoot when a is a non-residue.
func SqrtModP(a, p *big.Int) (*big.Int, error) {
	m := new(big.Int).Mod(a, p)
	if m.Sign() == 0 {
		return new(big.Int), nil
	}
	if big.Jacobi(m, p) != 1 {
		return nil, ErrNoSquareRoot
	}
	if new(big.Int).And(p, three).Cmp(three) == 0 {
		e := new(big.Int).Add(p, one)
		e.Rsh(e, 2)
		return new(big.Int).Exp(m, e, p), nil
	}
	r := new(big.Int).ModSqrt(m, p)
	if r == nil {
		return nil, ErrNoSquareRoot
	}
	return r, nil
}

// InverseMod returns x⁻¹ mod m, or ErrNotInvertible when gcd(x, m) ≠ 1.
func InverseMod(x, m *big.Int) (*big.Int, error) {
	inv := new(big.Int).ModInverse(x, m)
	if inv == nil {
		return nil, ErrNotInvertible
	}
	return inv, nil
}

// RandomInRange returns a uniform random integer in [min, max).
func RandomInRange(rng io.Reader, min, max *big.Int) (*big.Int, error) {
	if min.Cmp(max) >= 0 {
		return nil, errors.New("mathx: empty range: min >= max")
	}
	span := new(big.Int).Sub(max, min)
	r, err := rand.Int(rng, span)
	if err != nil {
		return nil, fmt.Errorf("random in range: %w", err)
	}
	return r.Add(r, min), nil
}

// RandomFieldElement returns a uniform random element of [1, q), i.e. a
// nonzero scalar of the field F_q.
func RandomFieldElement(rng io.Reader, q *big.Int) (*big.Int, error) {
	return RandomInRange(rng, one, q)
}

// RandomPrime returns a random prime with exactly the given bit length.
func RandomPrime(rng io.Reader, bits int) (*big.Int, error) {
	if bits < 2 {
		return nil, fmt.Errorf("mathx: prime size %d too small", bits)
	}
	p, err := rand.Prime(rng, bits)
	if err != nil {
		return nil, fmt.Errorf("random prime: %w", err)
	}
	return p, nil
}

// RandomSafePrime returns a random safe prime p = 2p' + 1 of the given bit
// length (p and p' both prime), as required by the mediated-RSA key
// generation in the paper. This is slow for large sizes; callers that only
// need test vectors should use the embedded fixed parameters instead.
func RandomSafePrime(rng io.Reader, bits int) (*big.Int, error) {
	if bits < 5 {
		return nil, fmt.Errorf("mathx: safe prime size %d too small", bits)
	}
	for {
		pp, err := rand.Prime(rng, bits-1)
		if err != nil {
			return nil, fmt.Errorf("safe prime: %w", err)
		}
		p := new(big.Int).Lsh(pp, 1)
		p.Add(p, one)
		if p.ProbablyPrime(20) {
			return p, nil
		}
	}
}

// IsSafePrime reports whether p is prime and (p−1)/2 is prime.
func IsSafePrime(p *big.Int) bool {
	if !p.ProbablyPrime(20) {
		return false
	}
	pp := new(big.Int).Sub(p, one)
	pp.Rsh(pp, 1)
	return pp.ProbablyPrime(20)
}

// Lagrange0 computes the Lagrange coefficient λ_i for interpolating a degree
// t−1 polynomial at x = 0 from the evaluation points xs (distinct, nonzero
// mod q): λ_i = Π_{j≠i} x_j / (x_j − x_i) mod q.
//
// It is shared by the Shamir substrate and by the threshold-IBE recombiner.
func Lagrange0(i int, xs []*big.Int, q *big.Int) (*big.Int, error) {
	return LagrangeAt(i, xs, zero, q)
}

// LagrangeAt computes the Lagrange coefficient λ_i for interpolating at the
// point x = at: λ_i = Π_{j≠i} (at − x_j) / (x_i − x_j) mod q.
// Used directly for dishonest-share recovery (interpolating a share at a
// player index rather than at zero).
func LagrangeAt(i int, xs []*big.Int, at, q *big.Int) (*big.Int, error) {
	if i < 0 || i >= len(xs) {
		return nil, fmt.Errorf("mathx: lagrange index %d out of range", i)
	}
	num := big.NewInt(1)
	den := big.NewInt(1)
	tmp := new(big.Int)
	for j, xj := range xs {
		if j == i {
			continue
		}
		tmp.Sub(at, xj)
		num.Mul(num, tmp)
		num.Mod(num, q)
		tmp.Sub(xs[i], xj)
		den.Mul(den, tmp)
		den.Mod(den, q)
	}
	inv, err := InverseMod(den, q)
	if err != nil {
		return nil, fmt.Errorf("lagrange denominator: %w", err)
	}
	num.Mul(num, inv)
	num.Mod(num, q)
	return num, nil
}

// BytesToIntMod hashes-friendly helper: interprets b as a big-endian integer
// reduced modulo m.
func BytesToIntMod(b []byte, m *big.Int) *big.Int {
	x := new(big.Int).SetBytes(b)
	return x.Mod(x, m)
}

// PadBytes left-pads the big-endian encoding of x to exactly size bytes.
// It returns an error when x does not fit.
func PadBytes(x *big.Int, size int) ([]byte, error) {
	b := x.Bytes()
	if len(b) > size {
		return nil, fmt.Errorf("mathx: value needs %d bytes, only %d available", len(b), size)
	}
	out := make([]byte, size)
	copy(out[size-len(b):], b)
	return out, nil
}

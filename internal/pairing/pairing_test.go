package pairing

import (
	"crypto/rand"
	"math/big"
	"testing"
	"testing/quick"
)

func toyParams(t *testing.T) *Params {
	t.Helper()
	pp, err := Toy()
	if err != nil {
		t.Fatal(err)
	}
	return pp
}

func TestFixedSetsLoad(t *testing.T) {
	for _, name := range []string{"toy", "fast", "paper"} {
		pp, err := ByName(name)
		if err != nil {
			t.Fatalf("load %q: %v", name, err)
		}
		if pp.Name() != name {
			t.Errorf("set %q reports name %q", name, pp.Name())
		}
		if !pp.Generator().InSubgroup() {
			t.Errorf("set %q generator not in subgroup", name)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown set name accepted")
	}
}

func TestFixedSetSizes(t *testing.T) {
	fast, _ := Fast()
	paper, _ := Paper()
	if got := fast.Q().BitLen(); got != 128 {
		t.Errorf("fast |q| = %d, want 128", got)
	}
	if got := paper.Q().BitLen(); got != 160 {
		t.Errorf("paper |q| = %d, want 160", got)
	}
	if got := paper.P().BitLen(); got != 512 {
		t.Errorf("paper |p| = %d, want 512", got)
	}
}

func TestPairingNonDegenerate(t *testing.T) {
	pp := toyParams(t)
	P := pp.Generator()
	g := mustPair(t, pp, P, P)
	if g.IsOne() {
		t.Fatal("ê(P, P) = 1: pairing degenerate")
	}
	if !pp.InGT(g) {
		t.Fatal("pairing value escapes order-q subgroup")
	}
}

func TestPairingWithInfinity(t *testing.T) {
	pp := toyParams(t)
	P := pp.Generator()
	O := pp.Curve().Infinity()
	if !mustPair(t, pp, P, O).IsOne() {
		t.Error("ê(P, O) ≠ 1")
	}
	if !mustPair(t, pp, O, P).IsOne() {
		t.Error("ê(O, P) ≠ 1")
	}
}

func TestBilinearity(t *testing.T) {
	pp := toyParams(t)
	P := pp.Generator()
	q := pp.Q()
	for i := 0; i < 8; i++ {
		a, _ := rand.Int(rand.Reader, q)
		b, _ := rand.Int(rand.Reader, q)
		lhs := mustPair(t, pp, P.ScalarMul(a), P.ScalarMul(b))
		rhs := mustExp(t, mustPair(t, pp, P, P), new(big.Int).Mul(a, b))
		if !lhs.Equal(rhs) {
			t.Fatalf("ê(aP, bP) ≠ ê(P,P)^(ab) for a=%v b=%v", a, b)
		}
		// one-sided linearity
		l2 := mustPair(t, pp, P.ScalarMul(a), P)
		r2 := mustPair(t, pp, P, P.ScalarMul(a))
		if !l2.Equal(r2) {
			t.Fatalf("ê(aP, P) ≠ ê(P, aP) for a=%v", a)
		}
	}
}

func TestPairingOfSum(t *testing.T) {
	// ê(P + Q, R) = ê(P, R)·ê(Q, R)
	pp := toyParams(t)
	gen := pp.Generator()
	q := pp.Q()
	for i := 0; i < 5; i++ {
		a, _ := rand.Int(rand.Reader, q)
		b, _ := rand.Int(rand.Reader, q)
		c, _ := rand.Int(rand.Reader, q)
		P := gen.ScalarMul(a)
		Q := gen.ScalarMul(b)
		R := gen.ScalarMul(c)
		lhs := mustPair(t, pp, P.Add(Q), R)
		rhs := mustPair(t, pp, P, R).Mul(mustPair(t, pp, Q, R))
		if !lhs.Equal(rhs) {
			t.Fatalf("additivity in first slot fails (iter %d)", i)
		}
		lhs2 := mustPair(t, pp, R, P.Add(Q))
		rhs2 := mustPair(t, pp, R, P).Mul(mustPair(t, pp, R, Q))
		if !lhs2.Equal(rhs2) {
			t.Fatalf("additivity in second slot fails (iter %d)", i)
		}
	}
}

func TestDenominatorEliminationAgreesWithFullMiller(t *testing.T) {
	pp := toyParams(t)
	gen := pp.Generator()
	q := pp.Q()
	for i := 0; i < 6; i++ {
		a, _ := rand.Int(rand.Reader, q)
		b, _ := rand.Int(rand.Reader, q)
		P := gen.ScalarMul(a)
		Q := gen.ScalarMul(b)
		fast := mustPair(t, pp, P, Q)
		full, err := pp.PairFull(P, Q)
		if err != nil {
			t.Fatal(err)
		}
		if !fast.Equal(full) {
			t.Fatalf("optimized and full Miller loops disagree (iter %d)", i)
		}
	}
}

func TestPairingHashToPointCompatible(t *testing.T) {
	// The schemes pair generator-derived points against hashed identities.
	pp := toyParams(t)
	Q, err := pp.Curve().HashToPoint("BF-H1", []byte("bob@example.com"))
	if err != nil {
		t.Fatal(err)
	}
	s, _ := rand.Int(rand.Reader, pp.Q())
	P := pp.Generator()
	// ê(sP, Q) == ê(P, sQ) == ê(P, Q)^s
	l := mustPair(t, pp, P.ScalarMul(s), Q)
	m := mustPair(t, pp, P, Q.ScalarMul(s))
	r := mustExp(t, mustPair(t, pp, P, Q), s)
	if !l.Equal(m) || !l.Equal(r) {
		t.Fatal("pairing incompatibility with hashed points")
	}
}

func TestGTGroupOps(t *testing.T) {
	pp := toyParams(t)
	g := mustPair(t, pp, pp.Generator(), pp.Generator())

	inv, err := g.Inverse()
	if err != nil {
		t.Fatal(err)
	}
	if !g.Mul(inv).IsOne() {
		t.Error("g · g⁻¹ ≠ 1")
	}
	if !mustExp(t, g, big.NewInt(0)).IsOne() {
		t.Error("g⁰ ≠ 1")
	}
	if !mustExp(t, g, big.NewInt(1)).Equal(g) {
		t.Error("g¹ ≠ g")
	}
	// negative exponent = inverse
	if !mustExp(t, g, big.NewInt(-1)).Equal(inv) {
		t.Error("g⁻¹ via Exp mismatch")
	}
	// Exp reduces its exponent mod q, so g^q = g^0 = 1 by construction.
	if !mustExp(t, g, pp.Q()).IsOne() {
		t.Error("g^q ≠ 1 (exponent reduction broken)")
	}
	if !pp.InGT(g) {
		t.Error("pairing output not in GT")
	}
}

func TestGTBytesRoundTrip(t *testing.T) {
	pp := toyParams(t)
	g := mustPair(t, pp, pp.Generator(), pp.Generator())
	data := g.Bytes()
	h, err := pp.GTFromBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(h) {
		t.Fatal("GT bytes round trip failed")
	}
	if _, err := pp.GTFromBytes([]byte{1}); err == nil {
		t.Fatal("short GT encoding accepted")
	}
}

func TestInGTRejectsOutsiders(t *testing.T) {
	pp := toyParams(t)
	// A random field element is in GT with probability q/(p²−1) ≈ 2⁻⁶⁴.
	el := pp.Field().NewElement(big.NewInt(2), big.NewInt(3))
	outsider := &GT{v: el, q: pp.Q()}
	if pp.InGT(outsider) {
		t.Fatal("random field element accepted as GT member")
	}
	zero := &GT{v: pp.Field().Zero(), q: pp.Q()}
	if pp.InGT(zero) {
		t.Fatal("zero accepted as GT member")
	}
}

func TestGenerateSmallParams(t *testing.T) {
	if testing.Short() {
		t.Skip("parameter generation is slow")
	}
	pp, err := Generate(rand.Reader, 32, 80)
	if err != nil {
		t.Fatal(err)
	}
	P := pp.Generator()
	a := big.NewInt(7)
	b := big.NewInt(11)
	lhs := mustPair(t, pp, P.ScalarMul(a), P.ScalarMul(b))
	rhs := mustExp(t, mustPair(t, pp, P, P), big.NewInt(77))
	if !lhs.Equal(rhs) {
		t.Fatal("generated params fail bilinearity")
	}
	if mustPair(t, pp, P, P).IsOne() {
		t.Fatal("generated params degenerate")
	}
}

func TestGenerateRejectsTinyCofactor(t *testing.T) {
	if _, err := Generate(rand.Reader, 32, 40); err == nil {
		t.Fatal("cofactor gap below 16 bits must be rejected")
	}
}

func TestQuickBilinearity(t *testing.T) {
	pp := toyParams(t)
	P := pp.Generator()
	base := mustPair(t, pp, P, P)
	q64 := pp.Q().Int64() // toy q fits in 32 bits
	cfg := &quick.Config{MaxCount: 15}
	property := func(a, b uint32) bool {
		ai := big.NewInt(int64(a) % q64)
		bi := big.NewInt(int64(b) % q64)
		lhs := mustPair(t, pp, P.ScalarMul(ai), P.ScalarMul(bi))
		rhs := mustExp(t, base, new(big.Int).Mul(ai, bi))
		return lhs.Equal(rhs)
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Fatal(err)
	}
}

package pairing

import (
	"fmt"
	"math/big"

	"repro/internal/gf"
)

// GTTable is a fixed-base exponentiation table for a long-lived GT element,
// the multiplicative analogue of curve.Precomputed: a radix-2^w table
// storing g^(d·2^(wj)) for every window j and digit d ∈ [1, 2^w−1], so that
// an exponentiation is ⌈|q|/w⌉ table lookups and multiplications with no
// squarings. The BF KEM calls ê(P_pub, Q_ID)^r once per encryption with the
// same base for a given recipient — exactly the shape this table serves.
// Immutable and safe for concurrent use after construction.
type GTTable struct {
	q       *big.Int //cryptolint:public (the subgroup order)
	w       uint
	windows int
	table   [][]*gf.Element // table[j][d-1] = g^(d·2^(wj))
}

// gtWindow is the GT fixed-base radix; 4 matches curve.precompWindow and
// keeps the table at (2^4−1)·⌈|q|/4⌉ elements (600 for a 160-bit order).
const gtWindow = 4

// NewGTTable builds the fixed-base table for g. Building costs one pass of
// ~(2^w−1)·⌈|q|/w⌉ field multiplications; afterwards every Exp is ~⌈|q|/w⌉
// multiplications. The identity has no useful table; it is rejected so a
// degenerate pairing value cannot silently absorb every exponent.
func NewGTTable(g *GT) (*GTTable, error) {
	if g == nil || g.v.IsZero() || g.IsOne() {
		return nil, fmt.Errorf("pairing: cannot build a GT table for a degenerate base")
	}
	q := new(big.Int).Set(g.q)
	w := uint(gtWindow)
	windows := (q.BitLen() + gtWindow - 1) / gtWindow
	perWindow := 1<<w - 1

	table := make([][]*gf.Element, windows)
	// windowBase starts at g and becomes g^(2^(wj)) for each window.
	windowBase := g.v.Copy()
	for j := 0; j < windows; j++ {
		row := make([]*gf.Element, perWindow)
		// row[d-1] = windowBase^d by repeated multiplication.
		acc := windowBase.Copy()
		row[0] = acc.Copy()
		for d := 2; d <= perWindow; d++ {
			acc.Mul(acc, windowBase)
			row[d-1] = acc.Copy()
		}
		table[j] = row
		// Next window base: windowBase^(2^w) = row[2^w−2] · windowBase.
		windowBase.Mul(row[perWindow-1], windowBase)
	}
	return &GTTable{q: q, w: w, windows: windows, table: table}, nil
}

// TableSize returns the number of stored field elements (memory diagnostics).
func (gt *GTTable) TableSize() int { return gt.windows * (1<<gt.w - 1) }

// Exp returns base^k with k reduced modulo the group order (negative k
// allowed), the same GT element — bit for bit — that GT.Exp produces.
func (gt *GTTable) Exp(k *big.Int) *GT {
	kr := new(big.Int).Mod(k, gt.q)
	f := gt.table[0][0].Field()
	out := f.One()
	if kr.Sign() == 0 {
		return &GT{v: out, q: new(big.Int).Set(gt.q)}
	}
	mask := big.Word(1)<<gt.w - 1
	words := kr.Bits()
	const wordBits = 32 << (^big.Word(0) >> 63) // 32 or 64
	for j := 0; j < gt.windows; j++ {
		bit := uint(j) * gt.w
		wi := bit / wordBits
		if wi >= uint(len(words)) {
			break
		}
		d := words[wi] >> (bit % wordBits)
		if rem := wordBits - bit%wordBits; rem < gt.w && wi+1 < uint(len(words)) {
			d |= words[wi+1] << rem
		}
		d &= mask
		if d == 0 {
			continue
		}
		out.Mul(out, gt.table[j][d-1])
	}
	return &GT{v: out, q: new(big.Int).Set(gt.q)}
}

package sem

import (
	"bytes"
	"crypto/rand"
	"errors"
	"fmt"
	"math/big"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/curve"
	"repro/internal/pairing"
)

// TestRegisterIBEOverWire enrolls a fresh identity through the wire op and
// proves the installed half actually mediates: a full encrypt → token →
// decrypt round trip for the new identity.
func TestRegisterIBEOverWire(t *testing.T) {
	f := newFixture(t)
	const bob = "bob@example.com"

	// Unknown before registration.
	if _, err := f.client.IBEToken(bob, f.pp.Generator()); !errors.Is(err, core.ErrUnknownIdentity) {
		t.Fatalf("pre-registration token err = %v, want ErrUnknownIdentity", err)
	}

	bobUser, bobSEM, err := f.pkg.SplitExtract(rand.Reader, bob)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.client.RegisterIBE(bob, bobSEM.D); err != nil {
		t.Fatal(err)
	}

	msg := bytes.Repeat([]byte{0x5a}, msgLen)
	ct, err := f.pkg.Public().Encrypt(rand.Reader, bob, msg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := f.client.DecryptIBE(f.pkg.Public(), bobUser, ct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("decrypted %x, want %x", got, msg)
	}
}

// TestRegisterGDHOverWire enrolls a fresh GDH signer through the wire op
// and verifies a mediated signature made with the registered half.
func TestRegisterGDHOverWire(t *testing.T) {
	f := newFixture(t)
	const bob = "bob-gdh@example.com"
	ta := core.NewGDHAuthority(f.pp)
	bobUser, bobSEM, err := ta.Keygen(rand.Reader, bob)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.client.RegisterGDH(bob, bobSEM.X); err != nil {
		t.Fatal(err)
	}
	msg := []byte("registered over the wire")
	sig, err := f.client.SignGDH(bobUser, msg)
	if err != nil {
		t.Fatal(err)
	}
	if err := bobUser.Public.Verify(msg, sig); err != nil {
		t.Fatalf("signature with wire-registered half invalid: %v", err)
	}
}

// TestRegisterBatchAndValidation covers the bulk-enrollment path plus the
// server-side operand validation (malformed point, out-of-range scalar,
// missing identity).
func TestRegisterBatchAndValidation(t *testing.T) {
	f := newFixture(t)
	ids := make([]string, 5)
	ds := make([]*curve.Point, 5)
	for i := range ids {
		ids[i] = fmt.Sprintf("batch%d@example.com", i)
		_, h, err := f.pkg.SplitExtract(rand.Reader, ids[i])
		if err != nil {
			t.Fatal(err)
		}
		ds[i] = h.D
	}
	errs, err := f.client.RegisterIBEBatch(ids, ds)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range errs {
		if e != nil {
			t.Fatalf("batch register of %s: %v", ids[i], e)
		}
	}
	for _, id := range ids {
		if _, err := f.client.IBEToken(id, f.pp.Generator()); err != nil {
			t.Fatalf("token for batch-registered %s: %v", id, err)
		}
	}

	// Malformed point: remote bad-request, no typed sentinel.
	if _, err := f.client.roundTrip(&Request{Op: OpRegisterIBE, ID: "x@y", Payload: []byte("junk")}); !errors.Is(err, ErrRemote) {
		t.Fatalf("malformed point err = %v, want ErrRemote", err)
	}
	// Scalar outside [1, q-1].
	if err := f.client.RegisterGDH("x@y", f.pp.Q()); !errors.Is(err, ErrRemote) {
		t.Fatalf("out-of-range scalar err = %v, want ErrRemote", err)
	}
	if err := f.client.RegisterGDH("x@y", big.NewInt(0)); !errors.Is(err, ErrRemote) {
		t.Fatalf("zero scalar err = %v, want ErrRemote", err)
	}
	// Missing identity.
	if err := f.client.RegisterIBE("", f.pp.Generator()); !errors.Is(err, ErrRemote) {
		t.Fatalf("empty-id register err = %v, want ErrRemote", err)
	}
}

// TestRegisterDisabledByDefault proves the enrollment plane stays off
// unless AllowRegister is set: the op draws CodeUnsupported.
func TestRegisterDisabledByDefault(t *testing.T) {
	pp, err := pairing.Toy()
	if err != nil {
		t.Fatal(err)
	}
	reg := core.NewRegistry()
	pkg, err := core.NewMediatedPKG(rand.Reader, pp, msgLen)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(Config{
		Registry: reg,
		IBE:      core.NewIBESEM(pkg.Public(), reg),
		Pairing:  pp,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); _ = srv.Serve(ln) }()
	client, err := Dial(ln.Addr().String(), pp, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = client.Close()
		_ = srv.Close()
		wg.Wait()
	})
	err = client.RegisterIBE("x@y", pp.Generator())
	if !errors.Is(err, ErrRemote) {
		t.Fatalf("register on locked-down server err = %v, want ErrRemote", err)
	}
	if errors.Is(err, core.ErrRevoked) || errors.Is(err, core.ErrUnknownIdentity) {
		t.Fatalf("unsupported must carry no typed sentinel: %v", err)
	}
}

// Command pkgen is the deployment tool for the PKG / trusted-authority
// role: it generates system parameters, enrolls identities in all three
// mediated schemes (splitting each key between user and SEM), and writes
// the artifact set cmd/semd and cmd/medcli consume.
//
// Usage:
//
//	pkgen -out ./deploy -params paper -rsa 1024 -ids alice@example.com,bob@example.com
//
// It can also generate fresh pairing parameters (instead of the embedded
// fixed sets):
//
//	pkgen -genparams -qbits 160 -pbits 512
package main

import (
	"crypto/rand"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/keyfile"
	"repro/internal/pairing"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "pkgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("pkgen", flag.ContinueOnError)
	var (
		out       = fs.String("out", "deploy", "output directory for the deployment artifacts")
		params    = fs.String("params", "paper", "pairing parameter set: toy, fast or paper")
		rsaBits   = fs.Int("rsa", 1024, "IB-mRSA modulus size (0 disables the baseline; 512/1024 use embedded fixed moduli)")
		msgLen    = fs.Int("msglen", 32, "IBE plaintext length in bytes")
		ids       = fs.String("ids", "", "comma-separated identities to enroll")
		genParams = fs.Bool("genparams", false, "generate fresh pairing parameters and print them instead of deploying")
		qBits     = fs.Int("qbits", 160, "group order size for -genparams")
		pBits     = fs.Int("pbits", 512, "field size for -genparams")
		threshold = fs.String("threshold", "", "emit a (t,n) threshold deployment instead (e.g. -threshold 3,5)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *genParams {
		return generateParams(*qBits, *pBits)
	}
	if *ids == "" {
		return fmt.Errorf("no identities: pass -ids alice@example.com,bob@example.com")
	}
	if *threshold != "" {
		return deployThreshold(*out, *params, *msgLen, *threshold, *ids)
	}
	d, err := keyfile.NewDeployment(keyfile.DeploymentConfig{
		ParamSet: *params,
		MsgLen:   *msgLen,
		RSABits:  *rsaBits,
	})
	if err != nil {
		return err
	}
	for _, id := range strings.Split(*ids, ",") {
		id = strings.TrimSpace(id)
		if id == "" {
			continue
		}
		if err := d.Enroll(id); err != nil {
			return err
		}
		fmt.Printf("enrolled %s\n", id)
	}
	if err := d.Write(*out); err != nil {
		return err
	}
	fmt.Printf("wrote %s/system.json, %s/sem-store.json and %d user files under %s/users/\n",
		*out, *out, len(d.Users()), *out)
	fmt.Println("give sem-store.json to the SEM daemon (semd) and each users/<id>.json to its user only")
	return nil
}

func deployThreshold(out, params string, msgLen int, threshold, ids string) error {
	var t, n int
	if _, err := fmt.Sscanf(threshold, "%d,%d", &t, &n); err != nil {
		return fmt.Errorf("parse -threshold %q (want \"t,n\"): %w", threshold, err)
	}
	d, err := keyfile.NewThresholdDeployment(keyfile.ThresholdDeploymentConfig{
		ParamSet: params,
		MsgLen:   msgLen,
		T:        t,
		N:        n,
	})
	if err != nil {
		return err
	}
	count := 0
	for _, id := range strings.Split(ids, ",") {
		id = strings.TrimSpace(id)
		if id == "" {
			continue
		}
		if err := d.Enroll(id); err != nil {
			return err
		}
		count++
		fmt.Printf("enrolled %s across %d players\n", id, n)
	}
	if err := d.Write(out); err != nil {
		return err
	}
	fmt.Printf("wrote %s/threshold.json and %d player files under %s/players/ (t=%d, n=%d, %d identities)\n",
		out, n, out, t, n, count)
	return nil
}

func generateParams(qBits, pBits int) error {
	pp, err := pairing.Generate(rand.Reader, qBits, pBits)
	if err != nil {
		return err
	}
	gen := pp.Generator()
	fmt.Printf("p  = %x\n", pp.P())  //cryptolint:public (freshly generated public parameters; printing them is the tool's purpose)
	fmt.Printf("q  = %x\n", pp.Q())  //cryptolint:public (freshly generated public parameters; printing them is the tool's purpose)
	fmt.Printf("gx = %x\n", gen.X()) //cryptolint:public (freshly generated public parameters; printing them is the tool's purpose)
	fmt.Printf("gy = %x\n", gen.Y()) //cryptolint:public (freshly generated public parameters; printing them is the tool's purpose)
	fmt.Println("add these to internal/pairing/fixed.go to use them as a named set")
	return nil
}

// Package secrets resolves the //cryptolint:secret type annotation and
// decides which expressions carry secret material. It is shared by the
// secretcompare and secretleak analyzers.
//
// The annotation is written on a type declaration:
//
//	//cryptolint:secret
//	type PrivateKey struct {
//		ID string      // metadata, not secret
//		D  *curve.Point // secret
//	}
//
// A value whose type is an annotated named type (through any number of
// pointers) is secret. Taint propagates structurally, not through data flow:
//
//   - selecting a field of a secret value yields a secret value, unless the
//     field has basic type (int, string, bool, ...) — basic fields are
//     treated as metadata (identifiers, indices, timestamps);
//   - calling a method on a secret receiver yields a secret result, unless
//     the result has basic type (String(), Len(), Equal() accessors);
//   - indexing or slicing a secret slice yields a secret element;
//   - converting a secret value to another type — string(k.Bytes) — keeps
//     it secret: a conversion renames the bits, it does not summarise them.
//
// A non-basic field that is nonetheless public — a key half's bound modulus,
// a key pair's embedded public key — can opt out with a //cryptolint:public
// comment on the field declaration:
//
//	//cryptolint:secret
//	type HalfKey struct {
//		N    *big.Int //cryptolint:public (the modulus)
//		Half *big.Int
//	}
package secrets

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Marker is the annotation comment that declares a type secret-bearing.
const Marker = "//cryptolint:secret"

// PublicMarker is the field-level escape: a non-basic field of an annotated
// struct carrying this comment is treated as metadata, not key material.
const PublicMarker = "//cryptolint:public"

// Set holds the annotated type names of one analysis run, plus the fields of
// those types explicitly declared public.
type Set struct {
	names  map[*types.TypeName]bool
	public map[types.Object]bool
}

// Collect scans every source-loaded package for Marker annotations on type
// declarations and returns the resulting set.
func Collect(all []*analysis.Package) *Set {
	s := &Set{
		names:  make(map[*types.TypeName]bool),
		public: make(map[types.Object]bool),
	}
	for _, pkg := range all {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok.String() != "type" {
					continue
				}
				declMarked := hasMarker(gd.Doc, Marker)
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					if declMarked || hasMarker(ts.Doc, Marker) || hasMarker(ts.Comment, Marker) {
						if tn, ok := pkg.Info.Defs[ts.Name].(*types.TypeName); ok {
							s.names[tn] = true
						}
					}
					// Public field markers are honoured on every struct, not
					// just secret-marked ones: interprocedural flow taints
					// unannotated types too (a Point computed from a secret
					// scalar), and their parameter back-references — the
					// curve a point lives on, the field a curve caches —
					// need the same opt-out.
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					for _, field := range st.Fields.List {
						if !hasMarker(field.Doc, PublicMarker) && !hasMarker(field.Comment, PublicMarker) {
							continue
						}
						for _, name := range field.Names {
							if obj := pkg.Info.Defs[name]; obj != nil {
								s.public[obj] = true
							}
						}
					}
				}
			}
		}
	}
	return s
}

func hasMarker(cg *ast.CommentGroup, marker string) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if strings.HasPrefix(strings.TrimSpace(c.Text), marker) {
			return true
		}
	}
	return false
}

// Names reports how many annotated types the set holds.
func (s *Set) Names() int { return len(s.names) }

// Public reports whether obj is a struct field explicitly declared
// //cryptolint:public inside an annotated type. The taint layer uses it to
// stop propagation through declared-public fields.
func (s *Set) Public(obj types.Object) bool { return s.public[obj] }

// SecretType reports whether t is (a pointer to) an annotated named type.
func (s *Set) SecretType(t types.Type) bool {
	for {
		p, ok := t.Underlying().(*types.Pointer)
		if !ok {
			break
		}
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		if a, ok := t.(*types.Alias); ok {
			return s.SecretType(types.Unalias(a))
		}
		return false
	}
	return s.names[named.Obj()]
}

// SecretExpr reports whether the expression e carries secret material under
// the structural taint rules described in the package comment.
func (s *Set) SecretExpr(info *types.Info, e ast.Expr) bool {
	e = ast.Unparen(e)
	if tv, ok := info.Types[e]; ok && s.SecretType(tv.Type) {
		return true
	}
	switch x := e.(type) {
	case *ast.SelectorExpr:
		// Field or method access on a secret value: basic-typed results and
		// //cryptolint:public fields are metadata, everything else stays
		// secret.
		if !s.SecretExpr(info, x.X) {
			return false
		}
		if obj := info.Uses[x.Sel]; obj != nil && s.public[obj] {
			return false
		}
		return !isBasic(info.TypeOf(e))
	case *ast.CallExpr:
		// A type conversion is the same bits under a new name: string(k.Bytes)
		// is as secret as k.Bytes, even though the result type is basic. (A
		// *method* with a basic result stays metadata — it computed something.)
		if tv, ok := info.Types[ast.Unparen(x.Fun)]; ok && tv.IsType() && len(x.Args) == 1 {
			return s.SecretExpr(info, x.Args[0])
		}
		if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok && s.SecretExpr(info, sel.X) {
			return !isBasic(info.TypeOf(e))
		}
	case *ast.IndexExpr:
		return s.SecretExpr(info, x.X)
	case *ast.SliceExpr:
		return s.SecretExpr(info, x.X)
	case *ast.StarExpr:
		return s.SecretExpr(info, x.X)
	case *ast.UnaryExpr:
		return s.SecretExpr(info, x.X)
	}
	return false
}

func isBasic(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Basic)
	return ok
}

package core_test

import (
	"crypto/rand"
	"fmt"

	"repro/internal/core"
	"repro/internal/pairing"
)

// ExampleDecrypt shows the complete mediated-IBE lifecycle: setup, split
// extraction, encryption to a bare identity string, SEM-aided decryption,
// and instant revocation.
func ExampleDecrypt() {
	pp, err := pairing.Fast()
	if err != nil {
		fmt.Println(err)
		return
	}
	pkg, err := core.NewMediatedPKG(rand.Reader, pp, 32)
	if err != nil {
		fmt.Println(err)
		return
	}
	sem := core.NewIBESEM(pkg.Public(), core.NewRegistry())

	userHalf, semHalf, err := pkg.SplitExtract(rand.Reader, "bob@example.com")
	if err != nil {
		fmt.Println(err)
		return
	}
	sem.Register(semHalf)

	msg := make([]byte, 32)
	copy(msg, "hello, mediated world")
	ct, err := pkg.Public().Encrypt(rand.Reader, "bob@example.com", msg)
	if err != nil {
		fmt.Println(err)
		return
	}
	plain, err := core.Decrypt(sem, userHalf, ct)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(string(plain[:21]))

	sem.Registry().Revoke("bob@example.com", "example over")
	if _, err := core.Decrypt(sem, userHalf, ct); err != nil {
		fmt.Println("revoked: decryption refused")
	}
	// Output:
	// hello, mediated world
	// revoked: decryption refused
}

// ExampleSign shows mediated GDH signing: the SEM contributes its half, the
// user completes and verifies the signature.
func ExampleSign() {
	pp, err := pairing.Fast()
	if err != nil {
		fmt.Println(err)
		return
	}
	ta := core.NewGDHAuthority(pp)
	sem := core.NewGDHSEM(pp, core.NewRegistry())
	key, semHalf, err := ta.Keygen(rand.Reader, "alice@example.com")
	if err != nil {
		fmt.Println(err)
		return
	}
	sem.Register(semHalf)

	sig, err := core.Sign(sem, key, []byte("the document"))
	if err != nil {
		fmt.Println(err)
		return
	}
	if err := key.Public.Verify([]byte("the document"), sig); err == nil {
		fmt.Println("signature verifies")
	}
	// Output:
	// signature verifies
}

// Package cmpgood exercises the secretcompare negative cases.
package cmpgood

import (
	"crypto/subtle"

	"repro/internal/keys"
)

// Owner compares metadata: basic-typed fields of a secret struct are not
// secret.
func Owner(k *keys.PrivateKey, id string) bool {
	return k.ID == id
}

// MatchMaterial is the sanctioned constant-time comparison.
func MatchMaterial(k *keys.PrivateKey, probe []byte) bool {
	return subtle.ConstantTimeCompare(k.Material(), probe) == 1
}

// Loaded is a presence check: comparing a secret pointer against nil says
// nothing about the key bytes.
func Loaded(k *keys.PrivateKey) bool {
	return k != nil && nil != k.D
}

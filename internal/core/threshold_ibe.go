package core

import (
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"math/big"
	"sync"

	"repro/internal/bf"
	"repro/internal/curve"
	"repro/internal/mathx"
	"repro/internal/pairing"
	"repro/internal/shamir"
)

// (t, n) threshold Boneh-Franklin IBE (Section 3 of the paper).
//
// Setup: the PKG shares its master key s through a degree t−1 polynomial f,
// publishing P_pub = s·P and the verification points P_pub^(i) = f(i)·P.
// Keygen: player i receives the identity-key share d_IDi = f(i)·Q_ID and
// verifies ê(P_pub^(i), Q_ID) = ê(P, d_IDi).
// Decrypt: player i emits the decryption share ê(U, d_IDi); the recombiner
// picks t acceptable shares and computes g = Π ê(U, d_IDi)^λ_i, recovering
// m = V ⊕ H2(g).
// Robustness: each player can attach the NIZK proof of Section 3.2 showing
// its share is a consistent image under the pairing isomorphism; with
// n ≥ 2t−1 honest majority, bad shares are detected and the missing values
// recovered by Lagrange interpolation in GT.

var (
	// ErrShareVerification is returned when an identity-key share fails the
	// pairing consistency check.
	ErrShareVerification = errors.New("core: identity-key share failed verification")

	// ErrProofInvalid is returned when a decryption share's robustness proof
	// does not verify.
	ErrProofInvalid = errors.New("core: decryption-share proof invalid")

	// ErrNotEnoughValidShares is returned when fewer than t decryption
	// shares survive proof checking.
	ErrNotEnoughValidShares = errors.New("core: not enough valid decryption shares")
)

// ThresholdParams are the public parameters of the threshold system: the
// Boneh-Franklin publics plus the verification vector.
//
// Every share-verification equation pairs against the same n verification
// keys, so the params lazily cache one fixed-argument Miller program per
// key. Use by pointer (the caches make values non-copyable).
type ThresholdParams struct {
	Public *bf.PublicParams
	T, N   int
	// VerificationKeys[i-1] = P_pub^(i) = f(i)·P.
	VerificationKeys []*curve.Point

	vkMu      sync.Mutex
	vkPairers map[int]*pairing.FixedPair
}

// vkPair computes ê(P_pub^(i), q1) through a per-index cached
// fixed-argument program (i is 1-based and already range-checked by
// callers).
func (p *ThresholdParams) vkPair(i int, q1 *curve.Point) (*pairing.GT, error) {
	vk := p.VerificationKeys[i-1]
	p.vkMu.Lock()
	fp, ok := p.vkPairers[i]
	if !ok {
		built, err := p.Public.Pairing.NewFixedPair(vk)
		if err == nil {
			if p.vkPairers == nil {
				p.vkPairers = make(map[int]*pairing.FixedPair, p.N)
			}
			p.vkPairers[i] = built
			fp = built
		}
		// A degenerate verification key (nothing this package constructs)
		// leaves fp nil and falls through to the generic pairing.
	}
	p.vkMu.Unlock()
	if fp != nil {
		return fp.Pair(q1)
	}
	return p.Public.Pairing.Pair(vk, q1)
}

// ThresholdPKG is the trusted dealer: it holds the sharing polynomial and
// issues per-identity key shares.
type ThresholdPKG struct {
	params *ThresholdParams
	poly   *shamir.Polynomial
}

// KeyShare is player i's share d_IDi = f(i)·Q_ID of an identity key.
//
//cryptolint:secret
type KeyShare struct {
	ID    string
	Index int
	D     *curve.Point
}

// DecryptionShare is player i's contribution ê(U, d_IDi) for one ciphertext,
// optionally carrying a robustness proof.
type DecryptionShare struct {
	Index int
	G     *pairing.GT
	Proof *ShareProof // nil when robustness is not requested
}

// SetupThreshold creates a (t, n) threshold system over the pairing
// parameters: master key s, polynomial f with f(0) = s, P_pub = s·P and the
// public verification vector.
func SetupThreshold(rng io.Reader, pp *pairing.Params, msgLen, t, n int) (*ThresholdPKG, error) {
	if t < 1 || n < t {
		return nil, fmt.Errorf("core: invalid threshold (t=%d, n=%d)", t, n)
	}
	s, err := mathx.RandomFieldElement(orRand(rng), pp.Q())
	if err != nil {
		return nil, fmt.Errorf("sample master key: %w", err)
	}
	base, err := bf.SetupWithMaster(pp, s, msgLen)
	if err != nil {
		return nil, err
	}
	poly, err := shamir.NewPolynomial(orRand(rng), s, pp.Q(), t)
	if err != nil {
		return nil, fmt.Errorf("share master key: %w", err)
	}
	vks, commit := poly.VerificationVector(pp.Generator(), n)
	if !commit.Equal(base.Public().PPub) {
		return nil, fmt.Errorf("core: verification vector commitment mismatch")
	}
	return &ThresholdPKG{
		params: &ThresholdParams{
			Public:           base.Public(),
			T:                t,
			N:                n,
			VerificationKeys: vks,
		},
		poly: poly,
	}, nil
}

// Params returns the public threshold parameters.
func (tp *ThresholdPKG) Params() *ThresholdParams { return tp.params }

// VerifySetup lets any player check, before accepting shares, that the
// published verification vector is consistent: Σ λ_i·P_pub^(i) = P_pub for
// the given t-subset of indices.
func (p *ThresholdParams) VerifySetup(subset []int) error {
	return shamir.VerifyVector(p.VerificationKeys, p.Public.PPub, subset, p.Public.Pairing.Q())
}

// ExtractShare plays the paper's Keygen: it computes Q_ID and returns
// player i's share d_IDi = f(i)·Q_ID.
func (tp *ThresholdPKG) ExtractShare(id string, i int) (*KeyShare, error) {
	if i < 1 || i > tp.params.N {
		return nil, fmt.Errorf("core: player index %d out of range 1..%d", i, tp.params.N)
	}
	qid, err := bf.HashIdentity(tp.params.Public.Pairing, id)
	if err != nil {
		return nil, err
	}
	fi := tp.poly.Eval(big.NewInt(int64(i)))
	return &KeyShare{ID: id, Index: i, D: qid.ScalarMul(fi)}, nil
}

// NewThresholdParams assembles threshold parameters from externally
// produced material — a DKG run (internal/dkg) instead of the trusted
// dealer. The verification keys must satisfy vks[j-1] = x_j·P for player
// j's secret share x_j, and ppub = s·P for the joint secret.
func NewThresholdParams(pp *pairing.Params, msgLen, t, n int, ppub *curve.Point, vks []*curve.Point) (*ThresholdParams, error) {
	if t < 1 || n < t {
		return nil, fmt.Errorf("core: invalid threshold (t=%d, n=%d)", t, n)
	}
	if len(vks) != n {
		return nil, fmt.Errorf("core: %d verification keys for n=%d players", len(vks), n)
	}
	if msgLen <= 0 {
		return nil, fmt.Errorf("core: message length %d must be positive", msgLen)
	}
	params := &ThresholdParams{
		Public:           &bf.PublicParams{Pairing: pp, PPub: ppub, MsgLen: msgLen},
		T:                t,
		N:                n,
		VerificationKeys: append([]*curve.Point(nil), vks...),
	}
	// The dealer-free setup is still publicly checkable: any t-subset of
	// the verification keys must interpolate to P_pub.
	subset := make([]int, t)
	for i := range subset {
		subset[i] = i + 1
	}
	if err := params.VerifySetup(subset); err != nil {
		return nil, fmt.Errorf("core: DKG output inconsistent: %w", err)
	}
	return params, nil
}

// KeyShareFromScalar lets a player holding the secret-share scalar x_j
// (e.g. from a DKG) derive its identity-key share d_IDj = x_j·Q_ID without
// any dealer involvement.
func KeyShareFromScalar(pp *pairing.Params, id string, j int, x *big.Int) (*KeyShare, error) {
	qid, err := bf.HashIdentity(pp, id)
	if err != nil {
		return nil, err
	}
	return &KeyShare{ID: id, Index: j, D: qid.ScalarMul(x)}, nil
}

// VerifyKeyShare is the player's acceptance check from the paper:
// ê(P_pub^(i), Q_ID) = ê(P, d_IDi). A failing share triggers a complaint to
// the PKG.
func (p *ThresholdParams) VerifyKeyShare(share *KeyShare) error {
	if share.Index < 1 || share.Index > p.N {
		return fmt.Errorf("core: player index %d out of range 1..%d", share.Index, p.N)
	}
	qid, err := bf.HashIdentity(p.Public.Pairing, share.ID)
	if err != nil {
		return err
	}
	lhs, err := p.vkPair(share.Index, qid)
	if err != nil {
		return err
	}
	rhs, err := p.Public.Pairing.PairWithGenerator(share.D)
	if err != nil {
		return err
	}
	if !lhs.Equal(rhs) {
		return fmt.Errorf("%w: player %d, identity %q", ErrShareVerification, share.Index, share.ID)
	}
	return nil
}

// ComputeShare produces player i's decryption share ê(U, d_IDi) for the
// BasicIdent ciphertext component U, without a robustness proof.
func (p *ThresholdParams) ComputeShare(share *KeyShare, u *curve.Point) (*DecryptionShare, error) {
	g, err := p.Public.Pairing.Pair(u, share.D)
	if err != nil {
		return nil, err
	}
	return &DecryptionShare{Index: share.Index, G: g}, nil
}

// ShareProof is the non-interactive proof of Section 3.2 that a decryption
// share is the correct image of the player's key share under both pairing
// maps ê(P, ·) and ê(U, ·): the player proves knowledge of d_IDi such that
// ê(P, d_IDi) = ê(P_pub^(i), Q_ID) and ê(U, d_IDi) = share.
type ShareProof struct {
	W1 *pairing.GT  // ê(P, R) for the random commitment R
	W2 *pairing.GT  // ê(U, R)
	E  *big.Int     // Fiat-Shamir challenge
	V  *curve.Point // R + e·d_IDi
}

// ComputeShareWithProof produces the decryption share together with its
// robustness proof.
func (p *ThresholdParams) ComputeShareWithProof(rng io.Reader, share *KeyShare, u *curve.Point) (*DecryptionShare, error) {
	pp := p.Public.Pairing
	r, err := mathx.RandomFieldElement(orRand(rng), pp.Q())
	if err != nil {
		return nil, fmt.Errorf("sample proof nonce: %w", err)
	}
	bigR := pp.GeneratorMul(r)
	g, err := pp.Pair(u, share.D)
	if err != nil {
		return nil, err
	}
	w1, err := pp.PairWithGenerator(bigR)
	if err != nil {
		return nil, err
	}
	w2, err := pp.Pair(u, bigR)
	if err != nil {
		return nil, err
	}

	qid, err := bf.HashIdentity(pp, share.ID)
	if err != nil {
		return nil, err
	}
	pubPair, err := p.vkPair(share.Index, qid)
	if err != nil {
		return nil, err
	}
	e := proofChallenge(pp.Q(), g, pubPair, w1, w2)
	v := bigR.Add(share.D.ScalarMul(e))
	return &DecryptionShare{
		Index: share.Index,
		G:     g,
		Proof: &ShareProof{W1: w1, W2: w2, E: e, V: v},
	}, nil
}

// VerifyShareProof checks a decryption share's robustness proof against the
// player's public verification key:
//
//	ê(P, V) ≟ W1 · ê(P_pub^(i), Q_ID)^e
//	ê(U, V) ≟ W2 · share^e
//
// and that the challenge was honestly derived (Fiat-Shamir). The two
// pairing equations are checked as one randomized combination: with a fresh
// verifier-private ρ ← [1, q),
//
//	ê(P, V) · ê(ρ·U, V) ≟ (W1 · pubPair^e) · (W2 · share^e)^ρ,
//
// computed with a single two-pair MultiPair on the left. Writing the two
// equations' quotients as A and B, the combined check is A·B^ρ = 1, which
// for (A, B) ≠ (1, 1) holds for at most one ρ in the order-q group — a
// cheating prover survives with probability ≤ 1/(q−1), far below the 2⁻ᵏ
// soundness of the Fiat-Shamir challenge itself.
func (p *ThresholdParams) VerifyShareProof(id string, u *curve.Point, ds *DecryptionShare) error {
	if ds.Proof == nil {
		return fmt.Errorf("%w: missing proof", ErrProofInvalid)
	}
	if ds.Index < 1 || ds.Index > p.N {
		return fmt.Errorf("%w: index %d out of range", ErrProofInvalid, ds.Index)
	}
	pp := p.Public.Pairing
	qid, err := bf.HashIdentity(pp, id)
	if err != nil {
		return err
	}
	pubPair, err := p.vkPair(ds.Index, qid)
	if err != nil {
		return err
	}
	e := proofChallenge(pp.Q(), ds.G, pubPair, ds.Proof.W1, ds.Proof.W2)
	if e.Cmp(ds.Proof.E) != 0 { //cryptolint:public (Fiat–Shamir challenge check; the proof and challenge are public values)
		return fmt.Errorf("%w: challenge mismatch (player %d)", ErrProofInvalid, ds.Index)
	}
	rho, err := mathx.RandomFieldElement(rand.Reader, pp.Q())
	if err != nil {
		return fmt.Errorf("sample verification scalar: %w", err)
	}
	lhs, err := pp.MultiPair(
		[]*curve.Point{pp.Generator(), u.ScalarMul(rho)},
		[]*curve.Point{ds.Proof.V, ds.Proof.V},
	)
	if err != nil {
		return err
	}
	pubPairE, err := pubPair.Exp(e)
	if err != nil {
		return err
	}
	shareE, err := ds.G.Exp(e)
	if err != nil {
		return err
	}
	rhs2, err := ds.Proof.W2.Mul(shareE).Exp(rho)
	if err != nil {
		return err
	}
	if !lhs.Equal(ds.Proof.W1.Mul(pubPairE).Mul(rhs2)) {
		return fmt.Errorf("%w: combined pairing equation (player %d)", ErrProofInvalid, ds.Index)
	}
	return nil
}

// proofChallenge is the Fiat-Shamir hash e = H(g, pubPair, w1, w2) ∈ F_q.
func proofChallenge(q *big.Int, g, pubPair, w1, w2 *pairing.GT) *big.Int {
	h := sha256.New()
	h.Write([]byte("THIBE-PROOF"))
	h.Write(g.Bytes())
	h.Write(pubPair.Bytes())
	h.Write(w1.Bytes())
	h.Write(w2.Bytes())
	return mathx.BytesToIntMod(h.Sum(nil), q)
}

// Recombine combines t decryption shares into the pairing value
// g = Π share_i^λ_i and opens the BasicIdent ciphertext. The caller is
// responsible for having selected "acceptable" shares (verified proofs);
// Recombine itself checks only structural validity.
func (p *ThresholdParams) Recombine(shares []*DecryptionShare, c *bf.BasicCiphertext) ([]byte, error) {
	g, err := p.CombineShares(shares)
	if err != nil {
		return nil, err
	}
	mask := bf.MaskGT(g, p.Public.MsgLen)
	if len(c.V) != p.Public.MsgLen {
		return nil, fmt.Errorf("core: ciphertext body %d bytes, want %d", len(c.V), p.Public.MsgLen)
	}
	out := make([]byte, p.Public.MsgLen)
	for i := range out {
		out[i] = c.V[i] ^ mask[i]
	}
	return out, nil
}

// CombineShares interpolates g = Π share_i^λ_i from exactly t shares.
func (p *ThresholdParams) CombineShares(shares []*DecryptionShare) (*pairing.GT, error) {
	if len(shares) < p.T {
		return nil, fmt.Errorf("%w: have %d, need %d", ErrNotEnoughValidShares, len(shares), p.T)
	}
	use := shares[:p.T]
	xs := make([]*big.Int, p.T)
	seen := make(map[int]bool, p.T)
	for i, s := range use {
		if seen[s.Index] {
			return nil, fmt.Errorf("core: duplicate share index %d", s.Index)
		}
		seen[s.Index] = true
		xs[i] = big.NewInt(int64(s.Index))
	}
	q := p.Public.Pairing.Q()
	g := p.Public.Pairing.One()
	for i, s := range use {
		li, err := mathx.Lagrange0(i, xs, q)
		if err != nil {
			return nil, fmt.Errorf("lagrange coefficient: %w", err)
		}
		gi, err := s.G.Exp(li)
		if err != nil {
			return nil, err
		}
		g = g.Mul(gi)
	}
	return g, nil
}

// RecoverShare interpolates the decryption share of an absent or dishonest
// player j from t honest shares: share_j = Π share_i^{λ_i(j)} — the
// "t among the others can combine their shares to find the one of the
// dishonest ones" step of Section 3.2.
func (p *ThresholdParams) RecoverShare(shares []*DecryptionShare, j int) (*DecryptionShare, error) {
	if len(shares) < p.T {
		return nil, fmt.Errorf("%w: have %d, need %d", ErrNotEnoughValidShares, len(shares), p.T)
	}
	use := shares[:p.T]
	xs := make([]*big.Int, p.T)
	for i, s := range use {
		if s.Index == j {
			return nil, fmt.Errorf("core: share %d already present", j)
		}
		xs[i] = big.NewInt(int64(s.Index))
	}
	q := p.Public.Pairing.Q()
	at := big.NewInt(int64(j))
	g := p.Public.Pairing.One()
	for i, s := range use {
		li, err := mathx.LagrangeAt(i, xs, at, q)
		if err != nil {
			return nil, fmt.Errorf("lagrange coefficient: %w", err)
		}
		gi, err := s.G.Exp(li)
		if err != nil {
			return nil, err
		}
		g = g.Mul(gi)
	}
	return &DecryptionShare{Index: j, G: g}, nil
}

// RobustDecrypt is the full robust recombiner: it verifies every share's
// proof, discards invalid ones, and if at least t survive, recombines and
// opens the ciphertext. It returns the indices of rejected players alongside
// the plaintext.
func (p *ThresholdParams) RobustDecrypt(id string, shares []*DecryptionShare, c *bf.BasicCiphertext) (msg []byte, rejected []int, err error) {
	valid := make([]*DecryptionShare, 0, len(shares))
	for _, s := range shares {
		if err := p.VerifyShareProof(id, c.U, s); err != nil {
			rejected = append(rejected, s.Index)
			continue
		}
		valid = append(valid, s)
	}
	if len(valid) < p.T {
		return nil, rejected, fmt.Errorf("%w: %d of %d shares valid", ErrNotEnoughValidShares, len(valid), len(shares))
	}
	msg, err = p.Recombine(valid, c)
	return msg, rejected, err
}

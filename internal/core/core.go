package core

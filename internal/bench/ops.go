package bench

import (
	"crypto/rand"
	"fmt"
	"math/big"
	"time"

	"repro/internal/bls"
	"repro/internal/core"
	"repro/internal/mrsa"
)

// OpFunc is one timed operation body.
type OpFunc func() error

// Op is a named operation in the T3 matrix.
type Op struct {
	Scheme string // "mediated-ibe", "ib-mrsa", "mediated-gdh", "mrsa"
	Name   string // e.g. "encrypt", "decrypt.user", "decrypt.sem", "verify"
	Run    OpFunc
}

// Ops builds the full T3 operation matrix over a prepared World. Each entry
// is a closure that executes exactly one protocol step, so testing.B and
// the CLI's wall-clock loop measure the same bodies.
func Ops(w *World) ([]Op, error) {
	pub := w.IBEPKG.Public()
	msg := make([]byte, w.MsgLen)
	ct, err := pub.Encrypt(rand.Reader, w.ID, msg)
	if err != nil {
		return nil, err
	}
	token, err := w.IBESEM.Token(w.ID, ct.U)
	if err != nil {
		return nil, err
	}

	rsaMsg := msg[:min(w.MsgLen, w.RSAPub.MaxMessageLen())]
	rsaCT, err := w.RSAPub.EncryptOAEP(rand.Reader, rsaMsg)
	if err != nil {
		return nil, err
	}
	rsaCTInt := new(big.Int).SetBytes(rsaCT)

	sigMsg := []byte("t3 operation benchmark message")
	h, err := bls.HashMessage(w.Pairing, sigMsg)
	if err != nil {
		return nil, err
	}
	gdhSemHalf, err := w.GDHSEM.HalfSign(w.ID, h)
	if err != nil {
		return nil, err
	}
	gdhSig, err := core.UserSign(w.GDHUser, sigMsg, gdhSemHalf)
	if err != nil {
		return nil, err
	}
	rsaSemHalf, err := w.RSASEM.HalfSign(w.ID, sigMsg)
	if err != nil {
		return nil, err
	}
	rsaUserHalf, err := mrsa.SignHalf(w.RSAUser, sigMsg)
	if err != nil {
		return nil, err
	}
	rsaSig, err := mrsa.FinishSignature(w.RSAPub, sigMsg, rsaUserHalf, rsaSemHalf)
	if err != nil {
		return nil, err
	}

	return []Op{
		// --- encryption (sender side; SEM not involved: transparency) ---
		{"mediated-ibe", "encrypt", func() error {
			_, err := pub.Encrypt(rand.Reader, w.ID, msg)
			return err
		}},
		{"ib-mrsa", "encrypt", func() error {
			_, err := w.RSAPub.EncryptOAEP(rand.Reader, rsaMsg)
			return err
		}},
		// --- decryption split by party ---
		{"mediated-ibe", "decrypt.sem", func() error {
			_, err := w.IBESEM.Token(w.ID, ct.U)
			return err
		}},
		{"mediated-ibe", "decrypt.user", func() error {
			_, err := core.UserDecrypt(pub, w.IBEUser, ct, token)
			return err
		}},
		{"mediated-ibe", "decrypt.total", func() error {
			_, err := core.Decrypt(w.IBESEM, w.IBEUser, ct)
			return err
		}},
		{"ib-mrsa", "decrypt.sem", func() error {
			_, err := w.RSASEM.HalfDecrypt(w.ID, rsaCTInt)
			return err
		}},
		{"ib-mrsa", "decrypt.user", func() error {
			half := w.RSAUser.Op(rsaCTInt)
			_ = half
			return nil
		}},
		{"ib-mrsa", "decrypt.total", func() error {
			_, err := mrsa.MediatedDecrypt(w.RSAPub, w.RSAUser, w.RSASEMK, rsaCT)
			return err
		}},
		// --- signing split by party ---
		{"mediated-gdh", "sign.sem", func() error {
			_, err := w.GDHSEM.HalfSign(w.ID, h)
			return err
		}},
		{"mediated-gdh", "sign.user", func() error {
			_, err := core.UserSign(w.GDHUser, sigMsg, gdhSemHalf)
			return err
		}},
		{"mediated-gdh", "sign.total", func() error {
			_, err := core.Sign(w.GDHSEM, w.GDHUser, sigMsg)
			return err
		}},
		{"mrsa", "sign.sem", func() error {
			_, err := w.RSASEM.HalfSign(w.ID, sigMsg)
			return err
		}},
		{"mrsa", "sign.user", func() error {
			_, err := mrsa.SignHalf(w.RSAUser, sigMsg)
			return err
		}},
		{"mrsa", "sign.total", func() error {
			hu, err := mrsa.SignHalf(w.RSAUser, sigMsg)
			if err != nil {
				return err
			}
			hs, err := w.RSASEM.HalfSign(w.ID, sigMsg)
			if err != nil {
				return err
			}
			_, err = mrsa.FinishSignature(w.RSAPub, sigMsg, hu, hs)
			return err
		}},
		// --- verification (relying party; no SEM, no revocation checks) ---
		{"mediated-gdh", "verify", func() error {
			return w.GDHUser.Public.Verify(sigMsg, gdhSig)
		}},
		{"mrsa", "verify", func() error {
			return w.RSAPub.Verify(sigMsg, rsaSig)
		}},
	}, nil
}

// TimeOps runs T3 standalone (for cmd/benchtab): each op is repeated for at
// least minIters iterations and minDuration wall time, whichever is larger.
func TimeOps(w *World, minIters int, minDuration time.Duration) (*Table, error) {
	ops, err := Ops(w)
	if err != nil {
		return nil, err
	}
	rows := make([][]string, 0, len(ops))
	for _, op := range ops {
		iters := 0
		start := time.Now()
		for time.Since(start) < minDuration || iters < minIters {
			if err := op.Run(); err != nil {
				return nil, fmt.Errorf("%s/%s: %w", op.Scheme, op.Name, err)
			}
			iters++
		}
		per := time.Since(start) / time.Duration(iters)
		rows = append(rows, []string{op.Scheme, op.Name, per.String(), fmt.Sprintf("%d", iters)})
	}
	return &Table{
		ID: "T3",
		Caption: fmt.Sprintf("per-operation computation (|q|=%d, |p|=%d pairing vs %d-bit RSA)",
			w.Pairing.Q().BitLen(), w.Pairing.P().BitLen(), w.RSAPub.N.BitLen()),
		Columns: []string{"scheme", "operation", "time/op", "iters"},
		Rows:    rows,
		Notes: []string{
			"expected shape: IB-mRSA decryption beats mediated-IBE decryption (pairings dominate) — the paper concedes this efficiency gap",
			"mediated-GDH signing is one scalar multiplication per party; its verification costs two pairings",
		},
	}, nil
}

package sem

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/pairing"
	"repro/internal/wire"
)

// Server is the SEM daemon. It serves whichever mediated schemes it was
// configured with; requests for an unconfigured scheme get CodeUnsupported.
// All schemes share one revocation registry: a single Revoke removes every
// capability of the identity at once.
//
// Requests are executed by a bounded worker pool shared across connections,
// so token issuance — a pairing per request — saturates the configured
// parallelism even when clients arrive on few connections, and a flood of
// connections cannot spawn an unbounded number of pairing computations.
// Each connection pipelines: the reader keeps accepting frames while earlier
// requests are still in flight, and a per-connection writer puts responses
// back on the wire in request order.
type Server struct {
	cfg Config
	met *serverMetrics

	jobs        chan job
	workersOnce sync.Once
	workerWG    sync.WaitGroup

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// job is one request travelling through the worker pool. done is buffered,
// so a worker never blocks on a slow (or dead) connection writer.
type job struct {
	req  *Request
	done chan *Response
}

// pipelineDepth bounds the number of in-flight requests per connection;
// beyond it the connection's reader stalls, back-pressuring the client.
const pipelineDepth = 64

// Config wires the SEM's scheme backends. Registry is required; the scheme
// backends are optional but must share that registry.
type Config struct {
	Registry *core.Registry
	IBE      *core.IBESEM
	GDH      *core.GDHSEM
	RSA      *core.RSASEM
	GM       *core.GMSEM
	// Journal, when set, persists revocation mutations (its Registry must
	// be the same one the backends share).
	Journal *core.Journal
	// Pairing is required when IBE or GDH is configured (to parse points).
	Pairing *pairing.Params
	// Logf receives connection-level errors; nil silences them.
	Logf func(format string, args ...any)
	// Workers is the size of the request-execution pool; values ≤ 0 default
	// to runtime.GOMAXPROCS(0). One worker serializes all requests (still
	// across many pipelined connections); more workers add CPU parallelism.
	Workers int
	// IOTimeout bounds each frame read (so it doubles as the per-connection
	// idle limit) and each response write, protecting the daemon from hung
	// or glacial peers. 0 selects the default (2 minutes); negative
	// disables deadlines entirely.
	IOTimeout time.Duration
	// Metrics, when set, registers the server's instrumentation (request
	// counts, error mix, service-time histograms, queue/in-flight/
	// connection gauges, pairer-cache stats) with the registry. Nil keeps
	// the server uninstrumented at zero additional cost on the wire path.
	Metrics *obs.Registry
}

// defaultIOTimeout is the per-frame read/write deadline applied when
// Config.IOTimeout is zero.
const defaultIOTimeout = 2 * time.Minute

// NewServer validates the configuration and returns an unstarted server.
func NewServer(cfg Config) (*Server, error) {
	if cfg.Registry == nil {
		return nil, errors.New("sem: config needs a Registry")
	}
	if (cfg.IBE != nil || cfg.GDH != nil) && cfg.Pairing == nil {
		return nil, errors.New("sem: pairing params required for IBE/GDH backends")
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.IOTimeout == 0 {
		cfg.IOTimeout = defaultIOTimeout
	}
	s := &Server{
		cfg:   cfg,
		jobs:  make(chan job, cfg.Workers),
		conns: make(map[net.Conn]struct{}),
	}
	s.met = newServerMetrics(cfg.Metrics, s)
	return s, nil
}

// Workers reports the size of the request-execution pool.
func (s *Server) Workers() int { return s.cfg.Workers }

// startWorkers launches the execution pool (once, from Serve). Workers exit
// when the jobs channel is closed by Close.
func (s *Server) startWorkers() {
	s.workerWG.Add(s.cfg.Workers)
	for i := 0; i < s.cfg.Workers; i++ {
		go func() {
			defer s.workerWG.Done()
			for j := range s.jobs {
				s.met.inflight.Inc()
				start := time.Now()
				resp := s.dispatch(j.req)
				s.met.observe(j.req.Op, resp, time.Since(start))
				s.met.inflight.Dec()
				j.done <- resp
			}
		}()
	}
}

// Serve accepts connections on ln until Close is called. It blocks; run it
// in a goroutine when the caller needs to continue.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("sem: server is closed")
	}
	s.ln = ln
	s.mu.Unlock()
	s.workersOnce.Do(s.startWorkers)

	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return fmt.Errorf("sem accept: %w", err)
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.handleConn(conn)
		}()
	}
}

// ListenAndServe listens on addr and serves until Close.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("sem listen: %w", err)
	}
	return s.Serve(ln)
}

// Addr returns the listener address once Serve has been called.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Close stops accepting, closes live connections, waits for handlers to
// drain and then stops the worker pool.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	for c := range s.conns {
		_ = c.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	// All connection handlers have drained, so nothing can submit another
	// job; closing the channel releases the workers.
	close(s.jobs)
	s.workerWG.Wait()
	return err
}

// handleConn is the per-connection reader: it decodes frames, reserves a
// response slot in the FIFO and hands the request to the worker pool. A
// companion writer goroutine drains the FIFO so responses leave in request
// order no matter which worker finishes first.
func (s *Server) handleConn(conn net.Conn) {
	defer func() {
		_ = conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()

	pending := make(chan chan *Response, pipelineDepth)
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		broken := false
		for slot := range pending {
			resp := <-slot
			if broken {
				continue // keep draining so the reader never wedges
			}
			if s.cfg.IOTimeout > 0 {
				_ = conn.SetWriteDeadline(time.Now().Add(s.cfg.IOTimeout))
			}
			if _, err := writeFrame(conn, resp); err != nil {
				s.cfg.Logf("sem: write frame to %v: %v", conn.RemoteAddr(), err)
				broken = true
				_ = conn.Close() // unblock the reader
			}
		}
	}()

	for {
		var req Request
		if s.cfg.IOTimeout > 0 {
			// A per-frame read deadline: a peer that stops mid-frame (or
			// goes idle past the limit) releases the handler instead of
			// pinning it for the daemon's lifetime.
			_ = conn.SetReadDeadline(time.Now().Add(s.cfg.IOTimeout))
		}
		if _, err := readFrame(conn, &req); err != nil {
			if !errors.Is(err, net.ErrClosed) && err.Error() != "EOF" {
				s.cfg.Logf("sem: read frame from %v: %v", conn.RemoteAddr(), err)
			}
			break
		}
		slot := make(chan *Response, 1)
		pending <- slot
		s.jobs <- job{req: &req, done: slot}
	}
	close(pending)
	<-writerDone
}

// dispatch routes one request. It never panics; unexpected failures become
// CodeInternal responses.
func (s *Server) dispatch(req *Request) *Response {
	switch req.Op {
	case OpPing:
		return &Response{OK: true}
	case OpIBEToken:
		return s.ibeToken(req)
	case OpGDHSign:
		return s.gdhSign(req)
	case OpRSADecrypt:
		return s.rsaDecrypt(req)
	case OpRSASign:
		return s.rsaSign(req)
	case OpGMDecrypt:
		return s.gmDecrypt(req)
	case OpRevoke:
		if s.cfg.Journal != nil {
			if err := s.cfg.Journal.Revoke(req.ID, req.Reason); err != nil {
				return errResponse(CodeInternal, err)
			}
		} else {
			s.cfg.Registry.Revoke(req.ID, req.Reason)
		}
		return &Response{OK: true}
	case OpUnrevoke:
		if s.cfg.Journal != nil {
			if err := s.cfg.Journal.Unrevoke(req.ID); err != nil {
				return errResponse(CodeInternal, err)
			}
		} else {
			s.cfg.Registry.Unrevoke(req.ID)
		}
		return &Response{OK: true}
	case OpStatus:
		return &Response{OK: true, Revoked: s.cfg.Registry.IsRevoked(req.ID)}
	case OpList:
		body, err := json.Marshal(s.cfg.Registry.Entries())
		if err != nil {
			return errResponse(CodeInternal, err)
		}
		return &Response{OK: true, Payload: body}
	default:
		return &Response{OK: false, Code: CodeBadRequest, Error: fmt.Sprintf("unknown op %q", req.Op)}
	}
}

func (s *Server) ibeToken(req *Request) *Response {
	if s.cfg.IBE == nil {
		return &Response{OK: false, Code: CodeUnsupported, Error: "IBE backend not configured"}
	}
	u, err := wire.UnmarshalG1(s.cfg.Pairing.Curve(), req.Payload)
	if err != nil {
		return errResponse(CodeBadRequest, err)
	}
	token, err := s.cfg.IBE.Token(req.ID, u)
	if err != nil {
		return coreError(err)
	}
	return &Response{OK: true, Payload: token.Bytes()}
}

func (s *Server) gdhSign(req *Request) *Response {
	if s.cfg.GDH == nil {
		return &Response{OK: false, Code: CodeUnsupported, Error: "GDH backend not configured"}
	}
	h, err := wire.UnmarshalG1(s.cfg.Pairing.Curve(), req.Payload)
	if err != nil {
		return errResponse(CodeBadRequest, err)
	}
	half, err := s.cfg.GDH.HalfSign(req.ID, h)
	if err != nil {
		return coreError(err)
	}
	return &Response{OK: true, Payload: half.Marshal()}
}

func (s *Server) rsaDecrypt(req *Request) *Response {
	if s.cfg.RSA == nil {
		return &Response{OK: false, Code: CodeUnsupported, Error: "RSA backend not configured"}
	}
	half, err := s.cfg.RSA.HalfDecryptBytes(req.ID, req.Payload)
	if err != nil {
		return coreError(err)
	}
	return &Response{OK: true, Payload: half.Bytes()} //cryptolint:public (sanctioned wire serialization edge; the half-result goes to the user by design)
}

func (s *Server) rsaSign(req *Request) *Response {
	if s.cfg.RSA == nil {
		return &Response{OK: false, Code: CodeUnsupported, Error: "RSA backend not configured"}
	}
	half, err := s.cfg.RSA.HalfSign(req.ID, req.Payload)
	if err != nil {
		return coreError(err)
	}
	return &Response{OK: true, Payload: half.Bytes()} //cryptolint:public (sanctioned wire serialization edge; the half-result goes to the user by design)
}

func (s *Server) gmDecrypt(req *Request) *Response {
	if s.cfg.GM == nil {
		return &Response{OK: false, Code: CodeUnsupported, Error: "GM backend not configured"}
	}
	cs, err := unpackInts(req.Payload)
	if err != nil {
		return errResponse(CodeBadRequest, err)
	}
	halves, err := s.cfg.GM.HalfDecrypt(req.ID, cs)
	if err != nil {
		return coreError(err)
	}
	payload, err := packInts(halves)
	if err != nil {
		return errResponse(CodeInternal, err)
	}
	return &Response{OK: true, Payload: payload}
}

// coreError maps the typed errors of internal/core onto protocol codes.
func coreError(err error) *Response {
	switch {
	case errors.Is(err, core.ErrRevoked):
		return errResponse(CodeRevoked, err)
	case errors.Is(err, core.ErrUnknownIdentity):
		return errResponse(CodeUnknownIdentity, err)
	default:
		return errResponse(CodeBadRequest, err)
	}
}

func errResponse(code ErrorCode, err error) *Response {
	return &Response{OK: false, Code: code, Error: err.Error()}
}

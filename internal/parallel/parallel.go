// Package parallel is a minimal worker-fan helper for the batch kernels:
// it splits n independent tasks into one contiguous chunk per worker and
// runs the chunks on up to GOMAXPROCS goroutines.
//
// The package exists so the deterministic-merge discipline lives in one
// place: callers index results by task number (never by completion order)
// and combine them in index order after the fan returns, so the output of a
// parallel kernel is bit-identical to its sequential run regardless of
// scheduling. The fan itself adds no ordering — it only guarantees that
// every index in [0, n) is processed exactly once and that all work is done
// when the call returns.
//
// Chunks are contiguous (worker k gets [k·n/w, (k+1)·n/w)) rather than
// strided so per-worker scratch — bucket slabs in the MSM kernel, Miller
// accumulators in MultiPair — is reused across a whole range without false
// sharing of neighbouring results.
//
// With GOMAXPROCS = 1 (or n = 1) the chunk runs inline on the caller's
// goroutine: the parallel path degenerates to the sequential one with no
// goroutine or channel traffic, which keeps single-core latency unchanged
// and makes -cpu=1 test runs exercise the same code path.
package parallel

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// poolCounters is the process-global utilization accounting for every fan
// in the process (MSM windows, Miller-loop chunks, batch-verify hashing).
// Atomic, recorded unconditionally; exported through RegisterPoolMetrics.
var poolCounters struct {
	fans    atomic.Uint64 // Fan/FanChunks invocations
	tasks   atomic.Uint64 // task indices processed across all fans
	workers atomic.Uint64 // workers launched across all fans (1 per inline run)
	active  atomic.Int64  // currently running workers (gauge)
}

// Workers returns the number of workers a fan over n independent tasks
// uses: min(GOMAXPROCS, n), at least 1. Exposed so callers can pre-size
// per-worker result slots and decide whether a parallel split is worth its
// chunking overhead (pass a derated n, e.g. pairs/2, to require a minimum
// chunk size).
func Workers(n int) int {
	w := runtime.GOMAXPROCS(0)
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Fan runs fn(i) for every i in [0, n) across Workers(n) goroutines and
// returns when all calls have completed. fn must be safe for concurrent
// invocation on distinct indices; writes belong in per-index slots.
func Fan(n int, fn func(i int)) {
	FanChunks(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// WorkerPanic wraps a panic recovered on a fan worker goroutine. FanChunks
// re-raises it on the caller's goroutine, so the panic surfaces at the call
// site like a sequential panic would — but by then the worker's own stack
// is gone, so the wrapper carries a runtime.Stack snapshot taken inside the
// panicking worker. It implements error so a recover()-and-report layer can
// treat it uniformly; Error and String include the worker stack.
type WorkerPanic struct {
	// Value is the value the worker's chunk panicked with.
	Value any
	// Stack is the panicking worker's stack trace, captured by
	// runtime.Stack at recovery, with the kernel frames that caused the
	// panic still on it.
	Stack []byte
}

// Error renders the original panic value followed by the worker stack.
func (wp *WorkerPanic) Error() string {
	return fmt.Sprintf("parallel: worker panic: %v\n\nworker stack:\n%s", wp.Value, wp.Stack)
}

// String makes the worker stack visible when the re-raised panic is
// printed by the runtime's crash handler.
func (wp *WorkerPanic) String() string { return wp.Error() }

// FanChunks splits [0, n) into one contiguous chunk per worker and runs
// chunk(lo, hi) for each, returning when every chunk has completed. A
// panicking chunk is a kernel bug: the first worker panic is captured with
// its goroutine's stack and re-raised on the caller's goroutine as a
// *WorkerPanic after all workers have stopped, so the failure points at
// the offending kernel frame instead of crashing the process from an
// anonymous goroutine. On the inline single-worker path the chunk panics
// straight through with its stack intact.
func FanChunks(n int, chunk func(lo, hi int)) {
	if n <= 0 {
		return
	}
	w := Workers(n)
	poolCounters.fans.Add(1)
	poolCounters.tasks.Add(uint64(n))
	poolCounters.workers.Add(uint64(w))
	if w == 1 {
		poolCounters.active.Add(1)
		defer poolCounters.active.Add(-1)
		chunk(0, n)
		return
	}
	var first atomic.Pointer[WorkerPanic]
	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		lo, hi := k*n/w, (k+1)*n/w
		go func(lo, hi int) {
			defer wg.Done()
			defer func() {
				if v := recover(); v != nil {
					buf := make([]byte, 64<<10)
					buf = buf[:runtime.Stack(buf, false)]
					first.CompareAndSwap(nil, &WorkerPanic{Value: v, Stack: buf})
				}
			}()
			poolCounters.active.Add(1)
			defer poolCounters.active.Add(-1)
			chunk(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	if wp := first.Load(); wp != nil {
		panic(wp) //cryptolint:panic-ok (deliberate re-raise of a worker panic on the caller's goroutine)
	}
}

// PoolStats is a snapshot of the fan counters.
type PoolStats struct {
	// Fans counts Fan/FanChunks invocations.
	Fans uint64
	// Tasks counts task indices processed across all fans; Tasks/Fans is
	// the mean fan width.
	Tasks uint64
	// Workers counts workers launched across all fans; Workers/Fans is the
	// mean parallelism actually achieved (1 on single-core hosts).
	Workers uint64
}

// Stats returns the current pool counters.
func Stats() PoolStats {
	return PoolStats{
		Fans:    poolCounters.fans.Load(),
		Tasks:   poolCounters.tasks.Load(),
		Workers: poolCounters.workers.Load(),
	}
}

// RegisterPoolMetrics exports the fan counters through reg as
// function-backed series sampled at scrape time. Idempotent (the registry
// deduplicates), so every instrumented component may call it.
func RegisterPoolMetrics(reg *obs.Registry) {
	reg.CounterFunc("parallel_fan_calls_total", "worker-fan invocations",
		func() uint64 { return poolCounters.fans.Load() })
	reg.CounterFunc("parallel_fan_tasks_total", "tasks processed across all worker fans",
		func() uint64 { return poolCounters.tasks.Load() })
	reg.CounterFunc("parallel_fan_workers_total", "workers launched across all worker fans",
		func() uint64 { return poolCounters.workers.Load() })
	reg.GaugeFunc("parallel_fan_active_workers", "currently running fan workers",
		func() int64 { return poolCounters.active.Load() })
}

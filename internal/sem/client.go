package sem

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math/big"
	"net"
	"sync"
	"time"

	"repro/internal/bf"
	"repro/internal/bls"
	"repro/internal/core"
	"repro/internal/curve"
	"repro/internal/gm"
	"repro/internal/mrsa"
	"repro/internal/obs"
	"repro/internal/pairing"
	"repro/internal/wire"
)

// Client is the user-side SEM connection. It multiplexes sequential
// request/response pairs over one TCP connection; methods are safe for
// concurrent use (calls serialize on the connection).
//
// The client tracks wire bytes per operation class, which is how the T2
// communication experiment measures the paper's "160 bits vs 1024 bits"
// claim on the actual protocol rather than on back-of-envelope sizes. The
// accounting lives in obs counters (optionally exported by Instrument);
// Stats keeps presenting the accumulated WireStats view.
//
// Every round trip runs under an operation deadline (SetOpTimeout,
// default 30s), so a hung or glacial SEM fails the call instead of
// stalling the caller forever — Dial's timeout only ever covered the
// connection attempt.
type Client struct {
	mu        sync.Mutex
	conn      net.Conn
	opTimeout time.Duration

	pairing *pairing.Params

	statsMu sync.Mutex
	stats   map[Op]*opStats
	reg     *obs.Registry
	latency *obs.Histogram
}

// WireStats accumulates protocol traffic for one operation class.
type WireStats struct {
	Calls         int
	BytesSent     int
	BytesReceived int
	// PayloadReceived counts only the SEM→user payload (the token/half),
	// excluding protocol framing — the quantity the paper compares.
	PayloadReceived int
}

// opStats is the per-op counter set behind WireStats. The counters are
// plain obs metrics; Instrument swaps in registered series.
type opStats struct {
	calls   *obs.Counter
	sent    *obs.Counter
	recv    *obs.Counter
	payload *obs.Counter
}

// defaultOpTimeout bounds one request/response exchange unless
// SetOpTimeout overrides it.
const defaultOpTimeout = 30 * time.Second

// Dial connects to a SEM daemon. pp may be nil when only RSA/admin
// operations will be used. timeout covers the connection attempt; the
// per-operation deadline defaults to 30s (SetOpTimeout adjusts it).
func Dial(addr string, pp *pairing.Params, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("dial SEM: %w", err)
	}
	return NewClient(conn, pp), nil
}

// NewClient wraps an established connection (tests use net.Pipe).
func NewClient(conn net.Conn, pp *pairing.Params) *Client {
	return &Client{
		conn:      conn,
		opTimeout: defaultOpTimeout,
		pairing:   pp,
		stats:     make(map[Op]*opStats),
	}
}

// SetOpTimeout changes the per-operation deadline applied to each round
// trip; d ≤ 0 disables deadlines.
func (c *Client) SetOpTimeout(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.opTimeout = d
}

// Instrument exports the client's wire accounting through reg:
// semclient_requests_total / semclient_bytes_sent_total /
// semclient_bytes_received_total / semclient_payload_bytes_total, each
// labelled by op, plus the semclient_roundtrip_seconds histogram. Call it
// before issuing requests — ops already exercised keep counting, but on
// unregistered series.
func (c *Client) Instrument(reg *obs.Registry) {
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	c.reg = reg
	c.latency = reg.Histogram("semclient_roundtrip_seconds", "full request/response round trip time")
}

// Close closes the underlying connection.
func (c *Client) Close() error { return c.conn.Close() }

// getStats returns (creating if needed) the counter set for op, plus the
// round-trip histogram (nil until Instrument; nil histograms record
// nothing).
func (c *Client) getStats(op Op) (*opStats, *obs.Histogram) {
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	st, ok := c.stats[op]
	if !ok {
		l := obs.Label{Key: "op", Value: string(op)}
		// A nil registry hands back live, unregistered counters, so the
		// uninstrumented client needs no separate path.
		st = &opStats{
			calls:   c.reg.Counter("semclient_requests_total", "client requests, by protocol op", l),
			sent:    c.reg.Counter("semclient_bytes_sent_total", "wire bytes sent, by protocol op", l),
			recv:    c.reg.Counter("semclient_bytes_received_total", "wire bytes received, by protocol op", l),
			payload: c.reg.Counter("semclient_payload_bytes_total", "SEM→user payload bytes (excluding framing), by protocol op", l),
		}
		c.stats[op] = st
	}
	return st, c.latency
}

// Stats returns a snapshot of the wire statistics per operation.
func (c *Client) Stats() map[Op]WireStats {
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	out := make(map[Op]WireStats, len(c.stats))
	for op, st := range c.stats {
		out[op] = WireStats{ //cryptolint:public (the operation code is metadata, not key material)
			Calls:           int(st.calls.Value()),
			BytesSent:       int(st.sent.Value()),
			BytesReceived:   int(st.recv.Value()),
			PayloadReceived: int(st.payload.Value()),
		}
	}
	return out
}

// roundTrip performs one request/response exchange.
func (c *Client) roundTrip(req *Request) (*Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	start := time.Now()
	if c.opTimeout > 0 {
		_ = c.conn.SetDeadline(start.Add(c.opTimeout))
	}
	sent, err := writeFrame(c.conn, req)
	if err != nil {
		return nil, fmt.Errorf("send %s: %w", req.Op, err)
	}
	var resp Response
	recv, err := readFrame(c.conn, &resp)
	if err != nil {
		return nil, fmt.Errorf("receive %s: %w", req.Op, err)
	}
	if c.opTimeout > 0 {
		_ = c.conn.SetDeadline(time.Time{})
	}
	st, lat := c.getStats(req.Op)
	st.calls.Inc()
	st.sent.Add(uint64(sent))
	st.recv.Add(uint64(recv))
	st.payload.Add(uint64(len(resp.Payload)))
	lat.Observe(time.Since(start))
	if !resp.OK {
		return nil, decodeError(&resp)
	}
	return &resp, nil
}

// decodeError maps protocol error codes back onto the typed core errors:
// the returned error's message is the SEM's own message, and errors.Is
// matches the corresponding sentinel.
func decodeError(resp *Response) error {
	switch resp.Code {
	case CodeRevoked:
		return &remoteError{msg: resp.Error, sentinel: core.ErrRevoked}
	case CodeUnknownIdentity:
		return &remoteError{msg: resp.Error, sentinel: core.ErrUnknownIdentity}
	default:
		return fmt.Errorf("sem: %s (%s)", resp.Error, resp.Code)
	}
}

// remoteError carries a SEM-side message while unwrapping to the typed
// sentinel the server classified it as.
type remoteError struct {
	msg      string
	sentinel error
}

func (e *remoteError) Error() string { return e.msg }
func (e *remoteError) Unwrap() error { return e.sentinel }

// Ping checks liveness.
func (c *Client) Ping() error {
	_, err := c.roundTrip(&Request{Op: OpPing})
	return err
}

// IBEToken requests the decryption token ê(U, d_ID,sem) for a ciphertext's
// U component.
func (c *Client) IBEToken(id string, u *curve.Point) (*pairing.GT, error) {
	if c.pairing == nil {
		return nil, errors.New("sem: client has no pairing params")
	}
	resp, err := c.roundTrip(&Request{Op: OpIBEToken, ID: id, Payload: u.Marshal()})
	if err != nil {
		return nil, err
	}
	// The token comes from the SEM, which the threat model treats as
	// honest-but-curious at best: enforce order-q membership before the
	// value enters the user's decryption arithmetic.
	return wire.UnmarshalGT(c.pairing, resp.Payload)
}

// DecryptIBE runs the user side of the full mediated-IBE decryption
// protocol over the network: request token, pair the user half, open.
func (c *Client) DecryptIBE(pub *bf.PublicParams, key *core.UserKeyHalf, ct *bf.Ciphertext) ([]byte, error) {
	token, err := c.IBEToken(key.ID, ct.U)
	if err != nil {
		return nil, err
	}
	return core.UserDecrypt(pub, key, ct, token)
}

// GDHHalfSign requests the SEM half-signature S_sem = x_sem·h for an
// already-hashed message point.
func (c *Client) GDHHalfSign(id string, h *curve.Point) (*curve.Point, error) {
	if c.pairing == nil {
		return nil, errors.New("sem: client has no pairing params")
	}
	resp, err := c.roundTrip(&Request{Op: OpGDHSign, ID: id, Payload: h.Marshal()})
	if err != nil {
		return nil, err
	}
	// The SEM's half-signature is also untrusted input: a compromised or
	// impersonated SEM must not be able to feed back out-of-subgroup points.
	return wire.UnmarshalG1(c.pairing.Curve(), resp.Payload)
}

// SignGDH runs the user side of the full mediated-GDH signing protocol over
// the network.
func (c *Client) SignGDH(key *core.GDHUserKey, msg []byte) (*curve.Point, error) {
	h, err := bls.HashMessage(key.Public.Pairing, msg)
	if err != nil {
		return nil, err
	}
	semHalf, err := c.GDHHalfSign(key.ID, h)
	if err != nil {
		return nil, err
	}
	return core.UserSign(key, msg, semHalf)
}

// RSAHalfDecrypt requests m_sem = c^{d_sem} mod n. The public key carries
// the modulus the SEM's response is range-checked against.
func (c *Client) RSAHalfDecrypt(pub *mrsa.PublicKey, id string, ciphertext *big.Int) (*big.Int, error) {
	resp, err := c.roundTrip(&Request{Op: OpRSADecrypt, ID: id, Payload: ciphertext.Bytes()}) //cryptolint:public (sanctioned wire serialization edge; the ciphertext is on the wire by design)
	if err != nil {
		return nil, err
	}
	return wire.UnmarshalScalar(resp.Payload, pub.N)
}

// DecryptRSA runs the user side of the mediated-RSA decryption protocol
// over the network.
func (c *Client) DecryptRSA(pub *mrsa.PublicKey, id string, userHalf *mrsa.HalfKey, ciphertext []byte) ([]byte, error) {
	if len(ciphertext) != pub.ModulusBytes() {
		return nil, mrsa.ErrDecrypt
	}
	ci, err := wire.UnmarshalScalar(ciphertext, pub.N)
	if err != nil {
		return nil, mrsa.ErrDecrypt
	}
	semHalf, err := c.RSAHalfDecrypt(pub, id, ci)
	if err != nil {
		return nil, err
	}
	combined := mrsa.Combine(pub.N, userHalf.Op(ci), semHalf)
	return mrsa.FinishDecrypt(pub, combined)
}

// RSAHalfSign requests EMSA(msg)^{d_sem} mod n. The public key carries the
// modulus the SEM's response is range-checked against.
func (c *Client) RSAHalfSign(pub *mrsa.PublicKey, id string, msg []byte) (*big.Int, error) {
	resp, err := c.roundTrip(&Request{Op: OpRSASign, ID: id, Payload: bytes.Clone(msg)})
	if err != nil {
		return nil, err
	}
	return wire.UnmarshalScalar(resp.Payload, pub.N)
}

// SignRSA runs the user side of the mediated-RSA signing protocol over the
// network.
func (c *Client) SignRSA(pub *mrsa.PublicKey, userHalf *mrsa.HalfKey, id string, msg []byte) ([]byte, error) {
	semHalf, err := c.RSAHalfSign(pub, id, msg)
	if err != nil {
		return nil, err
	}
	mine, err := mrsa.SignHalf(userHalf, msg)
	if err != nil {
		return nil, err
	}
	return mrsa.FinishSignature(pub, msg, mine, semHalf)
}

// GMHalfDecrypt requests the SEM half-results for a bitwise GM ciphertext.
func (c *Client) GMHalfDecrypt(id string, cs []*big.Int) ([]*big.Int, error) {
	payload, err := packInts(cs)
	if err != nil {
		return nil, err
	}
	resp, err := c.roundTrip(&Request{Op: OpGMDecrypt, ID: id, Payload: payload})
	if err != nil {
		return nil, err
	}
	halves, err := unpackInts(resp.Payload)
	if err != nil {
		return nil, err
	}
	if len(halves) != len(cs) {
		return nil, fmt.Errorf("sem: GM response has %d elements, want %d", len(halves), len(cs))
	}
	return halves, nil
}

// DecryptGM runs the user side of the mediated Goldwasser-Micali
// decryption protocol over the network.
func (c *Client) DecryptGM(pk *gm.PublicKey, id string, userHalf *gm.HalfKey, cs []*big.Int) ([]byte, error) {
	if len(cs)%8 != 0 {
		return nil, fmt.Errorf("sem: GM ciphertext length %d not a multiple of 8", len(cs))
	}
	semParts, err := c.GMHalfDecrypt(id, cs)
	if err != nil {
		return nil, err
	}
	out := make([]byte, len(cs)/8)
	for i, ct := range cs {
		bit, err := gm.CombineBit(pk, userHalf.Op(ct), semParts[i])
		if err != nil {
			return nil, fmt.Errorf("element %d: %w", i, err)
		}
		out[i/8] |= bit << uint(7-i%8)
	}
	return out, nil
}

// Revoke instructs the SEM to revoke an identity.
func (c *Client) Revoke(id, reason string) error {
	_, err := c.roundTrip(&Request{Op: OpRevoke, ID: id, Reason: reason})
	return err
}

// Unrevoke restores an identity.
func (c *Client) Unrevoke(id string) error {
	_, err := c.roundTrip(&Request{Op: OpUnrevoke, ID: id})
	return err
}

// Status reports whether an identity is revoked.
func (c *Client) Status(id string) (bool, error) {
	resp, err := c.roundTrip(&Request{Op: OpStatus, ID: id})
	if err != nil {
		return false, err
	}
	return resp.Revoked, nil
}

// ListRevoked fetches the SEM's full revocation list.
func (c *Client) ListRevoked() ([]core.RevocationEntry, error) {
	resp, err := c.roundTrip(&Request{Op: OpList})
	if err != nil {
		return nil, err
	}
	var entries []core.RevocationEntry
	if err := json.Unmarshal(resp.Payload, &entries); err != nil {
		return nil, fmt.Errorf("sem: parse revocation list: %w", err)
	}
	return entries, nil
}

// Package load type-checks Go packages from source using only the standard
// library (go/build for build-constraint file selection, go/parser and
// go/types for the rest). It exists because the module is dependency-free:
// golang.org/x/tools/go/packages is unavailable, and the go tool's export
// data is not guaranteed to be present, so imports — including the standard
// library — are resolved recursively from source.
//
// Two resolution roots are supported:
//
//   - module mode (New): "repro/..." import paths map into the module tree;
//     everything else is found through go/build (GOROOT, including its
//     vendored dependencies).
//   - overlay mode (NewOverlay): a GOPATH-style src directory takes
//     precedence for every import path, which is what the analysistest
//     fixture trees use to stub out repro packages.
//
// Packages reached through the module or overlay root keep their syntax
// (analyzers need it); standard-library dependencies contribute type
// information only.
package load

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analysis"
)

// Loader loads and memoizes type-checked packages over one shared FileSet.
// Not safe for concurrent use.
type Loader struct {
	fset       *token.FileSet
	ctx        build.Context
	modulePath string
	moduleRoot string
	overlay    string // GOPATH-style src root; "" outside analysistest
	pkgs       map[string]*entry
	loading    map[string]bool
	loaded     []*analysis.Package // source-kept packages, in load order
}

type entry struct {
	types *types.Package
	err   error
}

// New returns a module-mode loader rooted at moduleRoot (the directory
// holding go.mod).
func New(moduleRoot string) (*Loader, error) {
	modPath, err := modulePath(filepath.Join(moduleRoot, "go.mod"))
	if err != nil {
		return nil, err
	}
	l := newLoader()
	l.modulePath = modPath
	l.moduleRoot = moduleRoot
	return l, nil
}

// NewOverlay returns an overlay-mode loader: every import path is first
// resolved under srcRoot/<path> before falling back to the standard library.
func NewOverlay(srcRoot string) *Loader {
	l := newLoader()
	l.overlay = srcRoot
	return l
}

func newLoader() *Loader {
	ctx := build.Default
	// Select the pure-Go file sets everywhere; type-checking does not link,
	// and cgo-conditioned files cannot be parsed without cgo preprocessing.
	ctx.CgoEnabled = false
	return &Loader{
		fset:    token.NewFileSet(),
		ctx:     ctx,
		pkgs:    make(map[string]*entry),
		loading: make(map[string]bool),
	}
}

// Fset returns the shared position set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Loaded returns every package whose syntax was kept (module and overlay
// packages), in dependency-before-dependent order.
func (l *Loader) Loaded() []*analysis.Package { return l.loaded }

// Load type-checks the package at the given import path (and, recursively,
// everything it imports) and returns it with syntax.
func (l *Loader) Load(path string) (*analysis.Package, error) {
	if _, err := l.importPath(path, ""); err != nil {
		return nil, err
	}
	for _, p := range l.loaded {
		if p.Path == path {
			return p, nil
		}
	}
	return nil, fmt.Errorf("load: %s resolved outside the module/overlay roots", path)
}

// ModulePackages lists the import paths of every package in the module tree
// (directories containing at least one non-test .go file), skipping
// testdata and hidden directories.
func (l *Loader) ModulePackages() ([]string, error) {
	if l.moduleRoot == "" {
		return nil, fmt.Errorf("load: loader has no module root")
	}
	var paths []string
	err := filepath.WalkDir(l.moduleRoot, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != l.moduleRoot && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(p)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
				rel, err := filepath.Rel(l.moduleRoot, p)
				if err != nil {
					return err
				}
				if rel == "." {
					paths = append(paths, l.modulePath)
				} else {
					paths = append(paths, l.modulePath+"/"+filepath.ToSlash(rel))
				}
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	return paths, nil
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.importPath(path, "")
}

// ImportFrom implements types.ImporterFrom; srcDir lets go/build resolve
// GOROOT-vendored import paths.
func (l *Loader) ImportFrom(path, srcDir string, _ types.ImportMode) (*types.Package, error) {
	return l.importPath(path, srcDir)
}

func (l *Loader) importPath(path, srcDir string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if e, ok := l.pkgs[path]; ok {
		return e.types, e.err
	}
	if l.loading[path] {
		return nil, fmt.Errorf("load: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir, keep, err := l.resolve(path, srcDir)
	var tpkg *types.Package
	if err == nil {
		tpkg, err = l.check(path, dir, keep)
	}
	l.pkgs[path] = &entry{types: tpkg, err: err}
	return tpkg, err
}

// resolve maps an import path to a directory and reports whether the
// package's syntax should be kept for analysis.
func (l *Loader) resolve(path, srcDir string) (dir string, keep bool, err error) {
	if l.overlay != "" {
		d := filepath.Join(l.overlay, filepath.FromSlash(path))
		if hasGoFiles(d) {
			return d, true, nil
		}
	}
	if l.modulePath != "" && (path == l.modulePath || strings.HasPrefix(path, l.modulePath+"/")) {
		d := filepath.Join(l.moduleRoot, filepath.FromSlash(strings.TrimPrefix(strings.TrimPrefix(path, l.modulePath), "/")))
		if hasGoFiles(d) {
			return d, true, nil
		}
		return "", false, fmt.Errorf("load: no Go files in module package %s", path)
	}
	bp, err := l.ctx.Import(path, srcDir, 0)
	if err != nil {
		return "", false, fmt.Errorf("load: resolve %s: %w", path, err)
	}
	return bp.Dir, false, nil
}

func (l *Loader) check(path, dir string, keep bool) (*types.Package, error) {
	bp, err := l.ctx.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("load: scan %s: %w", dir, err)
	}
	names := append([]string(nil), bp.GoFiles...)
	sort.Strings(names)
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("load: parse %s: %w", name, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer: l,
		Sizes:    types.SizesFor("gc", l.ctx.GOARCH),
	}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("load: typecheck %s: %w", path, err)
	}
	if keep {
		l.loaded = append(l.loaded, &analysis.Package{
			Path:  path,
			Fset:  l.fset,
			Files: files,
			Types: tpkg,
			Info:  info,
		})
	}
	return tpkg, nil
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			return true
		}
	}
	return false
}

func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("load: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			mp := strings.TrimSpace(rest)
			mp = strings.Trim(mp, `"`)
			if mp != "" {
				return mp, nil
			}
		}
	}
	return "", fmt.Errorf("load: no module directive in %s", gomod)
}

// Dealerless threshold IBE: the Section 3 threshold system bootstrapped by
// a distributed key generation instead of a trusted dealer.
//
// Five key-server operators run a joint-Feldman DKG; the PKG master key
// exists only as shares — nobody, ever, holds it whole. One operator deals
// inconsistently during the DKG and is excluded; the surviving four still
// form a working (3, 4→5) system whose identity-key shares pass the
// paper's pairing checks and decrypt collaboratively.
//
// Run: go run ./examples/dealerless-threshold
package main

import (
	"crypto/rand"
	"fmt"
	"log"
	"math/big"

	"repro/internal/core"
	"repro/internal/dkg"
	"repro/internal/pairing"
)

const (
	tt     = 3
	n      = 5
	msgLen = 32
	id     = "vault@example.com"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	pp, err := pairing.Fast()
	if err != nil {
		return err
	}

	// --- DKG: operator 2 misdeals to operator 5 and gets excluded ---
	tamper := func(dealer, recipient int, share *big.Int) *big.Int {
		if dealer == 2 && recipient == 5 {
			return new(big.Int).Add(share, big.NewInt(1))
		}
		return share
	}
	result, scalars, err := dkg.Run(rand.Reader, pp, tt, n, tamper)
	if err != nil {
		return err
	}
	fmt.Printf("DKG complete: qualified dealers %v (operator 2 excluded by Feldman checks)\n", result.Qualified) //cryptolint:public (the qualified-dealer set is broadcast)
	fmt.Println("the master key exists only as shares — no trusted dealer, no single point of compromise")

	// --- Assemble the threshold system from the DKG transcript ---
	params, err := core.NewThresholdParams(pp, msgLen, tt, n, result.PPub, result.VerificationKeys)
	if err != nil {
		return err
	}
	fmt.Println("threshold parameters assembled and publicly verified against P_pub")

	// --- Each operator derives its identity-key share locally ---
	keyShares := make([]*core.KeyShare, n)
	for j := 1; j <= n; j++ {
		ks, err := core.KeyShareFromScalar(pp, id, j, scalars[j-1])
		if err != nil {
			return err
		}
		if err := params.VerifyKeyShare(ks); err != nil {
			return fmt.Errorf("operator %d share: %w", j, err)
		}
		keyShares[j-1] = ks
	}
	fmt.Printf("all %d operators derived and verified their key shares for %q\n", n, id)

	// --- Encrypt and jointly decrypt ---
	secret := []byte("launch code: 0000 (change it)")
	block := make([]byte, msgLen)
	block[0] = byte(len(secret))
	copy(block[1:], secret)
	ct, err := params.Public.EncryptBasic(rand.Reader, id, block)
	if err != nil {
		return err
	}
	var shares []*core.DecryptionShare
	for _, j := range []int{1, 3, 5} {
		ds, err := params.ComputeShareWithProof(rand.Reader, keyShares[j-1], ct.U)
		if err != nil {
			return err
		}
		shares = append(shares, ds)
	}
	plain, rejected, err := params.RobustDecrypt(id, shares, ct)
	if err != nil {
		return err
	}
	fmt.Printf("operators {1,3,5} decrypted (rejected: %v): %q\n",
		rejected, plain[1:1+int(plain[0])]) //cryptolint:public (the demo prints the recovered plaintext by design)
	return nil
}

package core

import "sync"

// keyStore is a small concurrency-safe string-keyed map shared by the SEM
// implementations for their per-identity key halves.
type keyStore[T any] struct {
	mu sync.RWMutex
	m  map[string]T
}

func newKeyStore[T any]() *keyStore[T] {
	return &keyStore[T]{m: make(map[string]T)}
}

func (s *keyStore[T]) put(id string, v T) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[id] = v
}

func (s *keyStore[T]) get(id string) (T, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.m[id]
	return v, ok
}

func (s *keyStore[T]) delete(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.m, id)
}

func (s *keyStore[T]) len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.m)
}

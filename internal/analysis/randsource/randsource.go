// Package randsource forbids non-cryptographic randomness in the module's
// internal crypto packages. Every nonce, blinding and key-share in the
// Libert–Quisquater schemes must come from crypto/rand; importing math/rand
// (or math/rand/v2, whose generators are trivially time-seeded) anywhere
// under an internal/ tree is a finding, as is seeding anything from
// time.Now.
package randsource

import (
	"go/ast"
	"strconv"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the randsource checker.
var Analyzer = &analysis.Analyzer{
	Name: "randsource",
	Doc:  "forbid math/rand and time-seeded randomness in internal crypto packages",
	Run:  run,
}

var banned = map[string]string{
	"math/rand":    "use crypto/rand",
	"math/rand/v2": "use crypto/rand",
}

func run(pass *analysis.Pass) error {
	if !guarded(pass.Pkg.Path) {
		return nil
	}
	for _, f := range pass.Pkg.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if hint, ok := banned[path]; ok {
				pass.Reportf(imp.Pos(), "import of %s in crypto package %s; %s", path, pass.Pkg.Path, hint)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			// Seeding any generator from the clock defeats it even when the
			// generator itself comes from an unbanned package.
			if isSeedCall(call) && usesTimeNow(pass, call.Args) {
				pass.Reportf(call.Pos(), "randomness seeded from time.Now in crypto package %s; use crypto/rand", pass.Pkg.Path)
			}
			return true
		})
	}
	return nil
}

// guarded reports whether the package path falls under the rule: any package
// inside an internal/ tree.
func guarded(path string) bool {
	for _, seg := range strings.Split(path, "/") {
		if seg == "internal" {
			return true
		}
	}
	return false
}

func isSeedCall(call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "Seed"
}

func usesTimeNow(pass *analysis.Pass, args []ast.Expr) bool {
	found := false
	for _, a := range args {
		ast.Inspect(a, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Now" {
				return true
			}
			if id, ok := sel.X.(*ast.Ident); ok && id.Name == "time" {
				found = true
				return false
			}
			return true
		})
	}
	return found
}

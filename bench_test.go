package repro

// One benchmark per table/figure of EXPERIMENTS.md, plus the ablations
// DESIGN.md calls out. The heavyweight fixtures (paper-size pairing, RSA
// worlds, SEM daemon) are built once and shared.
//
// Run everything:   go test -bench=. -benchmem
// One experiment:   go test -bench=BenchmarkT3Ops -benchmem

import (
	"crypto/rand"
	"io"
	"math/big"
	"sync"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/bls"
	"repro/internal/core"
	"repro/internal/mathx"
	"repro/internal/mrsa"
	"repro/internal/pairing"
	"repro/internal/revoke"
)

var (
	worldOnce sync.Once
	world     *bench.World
	worldErr  error
)

// paperWorld builds the shared paper-size deployment (|q|=160, |p|=512
// pairing; 1024-bit IB-mRSA) with a live SEM daemon.
func paperWorld(b *testing.B) *bench.World {
	b.Helper()
	worldOnce.Do(func() {
		world, worldErr = bench.NewWorld(bench.WorldConfig{StartServer: true})
	})
	if worldErr != nil {
		b.Fatal(worldErr)
	}
	return world
}

// BenchmarkT1Sizes regenerates Table 1 (key/ciphertext sizes).
func BenchmarkT1Sizes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Sizes(bench.SizesConfig{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkT2Communication regenerates Table 2 (SEM→user traffic) over the
// live TCP protocol.
func BenchmarkT2Communication(b *testing.B) {
	w := paperWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Communication(w); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkT3Ops regenerates Table 3: one sub-benchmark per operation and
// party, at the paper's parameter sizes.
func BenchmarkT3Ops(b *testing.B) {
	w := paperWorld(b)
	ops, err := bench.Ops(w)
	if err != nil {
		b.Fatal(err)
	}
	for _, op := range ops {
		b.Run(op.Scheme+"/"+op.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := op.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkT4AttackMatrix regenerates Table 4: the executable
// compromise/collusion matrix (dominated by factoring n from (e, d)).
func BenchmarkT4AttackMatrix(b *testing.B) {
	w := paperWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		outcomes, err := bench.Attacks(w)
		if err != nil {
			b.Fatal(err)
		}
		if !outcomes[0].SystemBroke {
			b.Fatal("IB-mRSA collusion attack failed")
		}
	}
}

// BenchmarkF1Revocation regenerates Figure 1: revocation latency and PKG
// cost across models, periods and populations (simulated clock — the bench
// measures the sweep itself).
func BenchmarkF1Revocation(b *testing.B) {
	cfg := bench.DefaultRevocationConfig()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Revocation(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkF2Threshold regenerates Figure 2: threshold decryption scaling;
// one sub-benchmark per (t, n) for the robust path.
func BenchmarkF2Threshold(b *testing.B) {
	pp, err := pairing.Fast()
	if err != nil {
		b.Fatal(err)
	}
	for _, t := range []int{1, 2, 4, 8} {
		tt, n := t, 2*t-1
		b.Run(thresholdLabel(t), func(b *testing.B) {
			pkg, err := core.SetupThreshold(rand.Reader, pp, 32, tt, n)
			if err != nil {
				b.Fatal(err)
			}
			p := pkg.Params()
			id := "bench@example.com"
			keyShares := make([]*core.KeyShare, n)
			for i := 1; i <= n; i++ {
				if keyShares[i-1], err = pkg.ExtractShare(id, i); err != nil {
					b.Fatal(err)
				}
			}
			ct, err := p.Public.EncryptBasic(rand.Reader, id, make([]byte, 32))
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				shares := make([]*core.DecryptionShare, n)
				for j := 0; j < n; j++ {
					if shares[j], err = p.ComputeShareWithProof(rand.Reader, keyShares[j], ct.U); err != nil {
						b.Fatal(err)
					}
				}
				if _, _, err := p.RobustDecrypt(id, shares, ct); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func thresholdLabel(t int) string {
	return "t=" + string(rune('0'+t))
}

// BenchmarkF3SEMThroughput regenerates Figure 3: SEM daemon throughput at
// fixed concurrency (full sweep via cmd/benchtab -exp f3).
func BenchmarkF3SEMThroughput(b *testing.B) {
	w := paperWorld(b)
	client, err := w.Dial()
	if err != nil {
		b.Fatal(err)
	}
	defer client.Close()
	h, err := bls.HashMessage(w.Pairing, []byte("bench"))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.GDHHalfSign(w.ID, h); err != nil {
			b.Fatal(err)
		}
	}
}

// --- primitive-level benchmarks: the costs T3 decomposes into ---

func BenchmarkPairing(b *testing.B) {
	for _, name := range []string{"toy", "fast", "paper"} {
		pp, err := pairing.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		P := pp.Generator()
		Q, err := pp.Curve().HashToPoint("bench", []byte("x"))
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_, _ = pp.Pair(P, Q)
			}
		})
	}
}

// BenchmarkScalarMul compares the three scalar-multiplication strategies at
// paper size: the default variable-base w-NAF/Jacobian path, the fixed-base
// comb behind Params.GeneratorMul, and the original affine double-and-add
// ladder kept as the correctness oracle.
func BenchmarkScalarMul(b *testing.B) {
	pp, _ := pairing.Paper()
	P := pp.Generator()
	k, _ := rand.Int(rand.Reader, pp.Q())
	pp.GeneratorMul(k) // force the lazy table build outside the timer
	b.Run("variable-wnaf", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			P.ScalarMul(k)
		}
	})
	b.Run("fixed-base", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			pp.GeneratorMul(k)
		}
	})
	b.Run("binary-ladder", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			P.ScalarMulBinary(k)
		}
	})
}

// BenchmarkGTExp compares generic square-and-multiply GT exponentiation with
// the fixed-base table the BF encryptor caches per recipient.
func BenchmarkGTExp(b *testing.B) {
	pp, _ := pairing.Paper()
	Q, err := pp.Curve().HashToPoint("bench", []byte("x"))
	if err != nil {
		b.Fatal(err)
	}
	g, err := pp.Pair(pp.Generator(), Q)
	if err != nil {
		b.Fatal(err)
	}
	tab, err := pairing.NewGTTable(g)
	if err != nil {
		b.Fatal(err)
	}
	k, _ := rand.Int(rand.Reader, pp.Q())
	b.Run("square-multiply", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_, _ = g.Exp(k)
		}
	})
	b.Run("fixed-base", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tab.Exp(k)
		}
	})
}

func BenchmarkHashToPoint(b *testing.B) {
	pp, _ := pairing.Paper()
	var ctr [8]byte
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctr[0] = byte(i)
		if _, err := pp.Curve().HashToPoint("bench", ctr[:]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRSAModExp(b *testing.B) {
	kp, err := mrsa.FixedPaperKeyPair()
	if err != nil {
		b.Fatal(err)
	}
	c, _ := rand.Int(rand.Reader, kp.Public.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		new(big.Int).Exp(c, kp.D, kp.Public.N)
	}
}

// --- ablations (DESIGN.md §5) ---

// BenchmarkAblationMiller quantifies denominator elimination: the default
// Miller loop vs the variant that tracks vertical-line denominators.
func BenchmarkAblationMiller(b *testing.B) {
	pp, _ := pairing.Paper()
	P := pp.Generator()
	Q, _ := pp.Curve().HashToPoint("bench", []byte("x"))
	b.Run("denominator-elimination", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_, _ = pp.Pair(P, Q)
		}
	})
	b.Run("full-miller", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := pp.PairFull(P, Q); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationPointCompression: compressed points trade a sqrt at
// decode time for half the wire size — the trade behind the paper's key
// size comparison.
func BenchmarkAblationPointCompression(b *testing.B) {
	pp, _ := pairing.Paper()
	P, err := pp.Curve().RandomG1(rand.Reader)
	if err != nil {
		b.Fatal(err)
	}
	data := P.Marshal()
	b.Run("marshal", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			P.Marshal()
		}
	})
	b.Run("unmarshal-sqrt", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := pp.Curve().Unmarshal(data); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationSafePrimes: the cost IB-mRSA's Setup pays for safe
// primes (measured at 256 bits; 512-bit safe primes take minutes).
func BenchmarkAblationSafePrimes(b *testing.B) {
	b.Run("safe-256", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := mathx.RandomSafePrime(rand.Reader, 256); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("plain-256", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := mathx.RandomPrime(rand.Reader, 256); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationRobustness: threshold decryption with vs without the
// NIZK share proofs (the price of byzantine tolerance).
func BenchmarkAblationRobustness(b *testing.B) {
	pp, _ := pairing.Fast()
	pkg, err := core.SetupThreshold(rand.Reader, pp, 32, 3, 5)
	if err != nil {
		b.Fatal(err)
	}
	p := pkg.Params()
	id := "bench@example.com"
	var keyShares []*core.KeyShare
	for i := 1; i <= 5; i++ {
		ks, err := pkg.ExtractShare(id, i)
		if err != nil {
			b.Fatal(err)
		}
		keyShares = append(keyShares, ks)
	}
	msg := make([]byte, 32)
	ct, err := p.Public.EncryptBasic(rand.Reader, id, msg)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("plain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			shares := make([]*core.DecryptionShare, 3)
			for j := 0; j < 3; j++ {
				if shares[j], err = p.ComputeShare(keyShares[j], ct.U); err != nil {
					b.Fatal(err)
				}
			}
			if _, err := p.Recombine(shares, ct); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("robust", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			shares := make([]*core.DecryptionShare, 5)
			for j := 0; j < 5; j++ {
				var err error
				if shares[j], err = p.ComputeShareWithProof(rand.Reader, keyShares[j], ct.U); err != nil {
					b.Fatal(err)
				}
			}
			if _, _, err := p.RobustDecrypt(id, shares, ct); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- integration tests at the repository level ---

// TestT4AttackMatrix pins the T4 verdicts at paper sizes.
func TestT4AttackMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-size attack matrix in short mode")
	}
	w, err := bench.NewWorld(bench.WorldConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	outcomes, err := bench.Attacks(w)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range outcomes {
		switch o.Scheme {
		case "ib-mrsa":
			if !o.SystemBroke {
				t.Errorf("IB-mRSA: %s", o.Detail)
			}
		default:
			if o.SystemBroke {
				t.Errorf("%s: %s", o.Scheme, o.Detail)
			}
		}
	}
}

// TestT5SecurityGames runs one round of each game at paper parameters to
// confirm the harness holds up beyond the toy field (statistics live in
// internal/core).
func TestT5SecurityGames(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-size security games in short mode")
	}
	pp, err := pairing.Paper()
	if err != nil {
		t.Fatal(err)
	}
	cheat := &core.CheatingTCPAAdversary{ID: "target@example.com", MsgLen: 32}
	won, err := core.RunTCPAGame(rand.Reader, pp, 32, 2, 3, cheat)
	if err != nil {
		t.Fatal(err)
	}
	if !won {
		t.Error("cheating TCPA adversary lost at paper parameters")
	}
	wcheat := &core.CheatingWCCAAdversary{ID: "target@example.com", MsgLen: 32}
	won, err = core.RunWCCAGame(rand.Reader, pp, 32, wcheat)
	if err != nil {
		t.Fatal(err)
	}
	if !won {
		t.Error("cheating wCCA adversary lost at paper parameters")
	}
}

// TestEndToEndAtPaperParameters is the repository's smoke test: enroll,
// encrypt, sign, revoke — everything at the paper's sizes, through the TCP
// daemon.
func TestEndToEndAtPaperParameters(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-size end-to-end in short mode")
	}
	w, err := bench.NewWorld(bench.WorldConfig{StartServer: true})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	client, err := w.Dial()
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	msg := make([]byte, w.MsgLen)
	if _, err := io.ReadFull(rand.Reader, msg); err != nil {
		t.Fatal(err)
	}
	ct, err := w.IBEPKG.Public().Encrypt(rand.Reader, w.ID, msg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := client.DecryptIBE(w.IBEPKG.Public(), w.IBEUser, ct)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(msg) {
		t.Fatal("paper-size decryption mismatch")
	}
	sig, err := client.SignGDH(w.GDHUser, msg)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.GDHUser.Public.Verify(msg, sig); err != nil {
		t.Fatal(err)
	}
	if err := client.Revoke(w.ID, "end of test"); err != nil {
		t.Fatal(err)
	}
	if _, err := client.DecryptIBE(w.IBEPKG.Public(), w.IBEUser, ct); err == nil {
		t.Fatal("revoked identity decrypted at paper parameters")
	}
}

// TestRevocationModelsSanity pins the headline F1 shape in a fast test.
func TestRevocationModelsSanity(t *testing.T) {
	sc := &revoke.Scenario{
		Population:  50,
		Duration:    14 * 24 * time.Hour,
		RevokeTimes: []time.Duration{5 * time.Hour},
	}
	semRes, err := sc.Run(revoke.NewSEM())
	if err != nil {
		t.Fatal(err)
	}
	vpRes, err := sc.Run(revoke.NewValidityPeriod(24 * time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if semRes.MeanLatency != 0 {
		t.Errorf("SEM latency %v, want 0", semRes.MeanLatency)
	}
	if vpRes.MeanLatency < 18*time.Hour {
		t.Errorf("validity latency %v, want ≈19h", vpRes.MeanLatency)
	}
}

// Package wire stubs the framing helpers for fixture use: both perform
// I/O on their first parameter without setting a deadline (they cannot —
// the parameter is a plain io.Reader/io.Writer), so the classification
// layer marks them I/O-performing and the duty lands on their callers.
package wire

import "io"

// WriteFrame writes one frame.
func WriteFrame(w io.Writer, v []byte) (int, error) {
	return w.Write(v)
}

// ReadFrame reads one frame.
func ReadFrame(r io.Reader, v []byte) (int, error) {
	return io.ReadFull(r, v)
}

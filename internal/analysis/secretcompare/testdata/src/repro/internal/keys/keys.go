// Package keys stubs an annotated key-holding type for fixture use.
package keys

import "math/big"

//cryptolint:secret
type PrivateKey struct {
	ID    string   // metadata
	N     *big.Int //cryptolint:public (the modulus)
	D     *big.Int
	Bytes []byte
}

// Material exposes the raw key bytes.
func (k *PrivateKey) Material() []byte { return k.Bytes }

// String renders only metadata; basic-typed results are not secret.
func (k *PrivateKey) String() string { return k.ID }

package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/keyfile"
)

func TestPkgenDeploy(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "deploy")
	err := run([]string{
		"-out", out,
		"-params", "toy",
		"-rsa", "512",
		"-ids", "alice@example.com, bob@example.com",
	})
	if err != nil {
		t.Fatal(err)
	}
	var sys keyfile.System
	if err := keyfile.Load(filepath.Join(out, "system.json"), &sys); err != nil {
		t.Fatal(err)
	}
	if sys.ParamSet != "toy" || len(sys.RSAModulus) == 0 {
		t.Fatalf("system = %+v", sys)
	}
	var store keyfile.SEMStore
	if err := keyfile.Load(filepath.Join(out, "sem-store.json"), &store); err != nil {
		t.Fatal(err)
	}
	if len(store.IBE) != 2 || len(store.GDH) != 2 || len(store.RSA) != 2 {
		t.Fatalf("store sizes: %d/%d/%d", len(store.IBE), len(store.GDH), len(store.RSA))
	}
	for _, id := range []string{"alice@example.com", "bob@example.com"} {
		path := filepath.Join(out, "users", keyfile.UserFileName(id))
		info, err := os.Stat(path)
		if err != nil {
			t.Fatalf("user file %s: %v", path, err)
		}
		if info.Mode().Perm() != 0o600 {
			t.Errorf("user file %s has mode %v, want 0600", path, info.Mode().Perm())
		}
	}
}

func TestPkgenRequiresIDs(t *testing.T) {
	if err := run([]string{"-out", t.TempDir()}); err == nil {
		t.Fatal("missing -ids accepted")
	}
}

func TestPkgenRejectsUnknownParams(t *testing.T) {
	if err := run([]string{"-out", t.TempDir(), "-params", "nope", "-ids", "x@x"}); err == nil {
		t.Fatal("unknown parameter set accepted")
	}
}

func TestPkgenGenParams(t *testing.T) {
	if testing.Short() {
		t.Skip("parameter generation in short mode")
	}
	if err := run([]string{"-genparams", "-qbits", "32", "-pbits", "80"}); err != nil {
		t.Fatal(err)
	}
}

package core

import (
	"fmt"
	"io"
	"math/big"

	"repro/internal/bls"
	"repro/internal/curve"
	"repro/internal/mathx"
	"repro/internal/pairing"
)

// Mediated GDH signature (Section 5 of the paper).
//
// A trusted authority picks x_user, x_sem ∈R F_q, gives each party its
// scalar and publishes R = (x_user + x_sem)·P. To sign M, the user sends
// h(M) to the SEM (which first checks revocation) and receives
// S_sem = x_sem·h(M) — a single compressed G1 point, the "160 bits" the
// paper contrasts with mRSA's 1024-bit half-signature. The user adds its
// own half S_user = x_user·h(M) and verifies the combined signature before
// releasing it. Verification is plain GDH: ê(P, S) = ê(R, h(M)).

// GDHUserKey is the user's signing-scalar half.
//
//cryptolint:secret
type GDHUserKey struct {
	ID     string
	X      *big.Int
	Public *bls.PublicKey //cryptolint:public (the combined public key R)
}

// GDHSEMKey is the SEM's signing-scalar half.
//
//cryptolint:secret
type GDHSEMKey struct {
	ID string
	X  *big.Int
}

// GDHAuthority is the trusted authority (TA) that performs the key setup.
type GDHAuthority struct {
	pp *pairing.Params
}

// NewGDHAuthority binds the TA to the pairing parameters.
func NewGDHAuthority(pp *pairing.Params) *GDHAuthority {
	return &GDHAuthority{pp: pp}
}

// Keygen runs the paper's Keygen for one user: sample both halves, publish
// R_i = (x_user + x_sem)·P.
//
//cryptolint:vartime (offline dealing at the TA; the big.Int scalar sum never runs on an online path)
func (a *GDHAuthority) Keygen(rng io.Reader, id string) (*GDHUserKey, *GDHSEMKey, error) {
	xu, err := mathx.RandomFieldElement(orRand(rng), a.pp.Q())
	if err != nil {
		return nil, nil, fmt.Errorf("sample user half: %w", err)
	}
	xs, err := mathx.RandomFieldElement(orRand(rng), a.pp.Q())
	if err != nil {
		return nil, nil, fmt.Errorf("sample SEM half: %w", err)
	}
	sum := new(big.Int).Add(xu, xs)
	sum.Mod(sum, a.pp.Q())
	pub := &bls.PublicKey{Pairing: a.pp, R: a.pp.GeneratorMul(sum)}
	return &GDHUserKey{ID: id, X: xu, Public: pub}, &GDHSEMKey{ID: id, X: xs}, nil
}

// GDHSEM is the mediator side of the mediated GDH signature. Safe for
// concurrent use.
type GDHSEM struct {
	pp   *pairing.Params
	reg  *Registry
	keys *keyStore[*GDHSEMKey]
}

// NewGDHSEM constructs a GDH SEM over a (possibly shared) revocation
// registry.
func NewGDHSEM(pp *pairing.Params, reg *Registry) *GDHSEM {
	return &GDHSEM{pp: pp, reg: reg, keys: newKeyStore[*GDHSEMKey]()}
}

// Register installs an identity's SEM signing half.
func (s *GDHSEM) Register(half *GDHSEMKey) { s.keys.put(half.ID, half) }

// Registry exposes the revocation registry (admin interface).
func (s *GDHSEM) Registry() *Registry { return s.reg }

// HalfSign is the SEM's protocol step: check revocation, then return
// S_sem = x_sem·h, where h is the (already hashed) message point the user
// sent. The SEM never sees the user's half-signature.
func (s *GDHSEM) HalfSign(id string, h *curve.Point) (*curve.Point, error) {
	if err := s.reg.Check(id); err != nil {
		return nil, err
	}
	half, ok := s.keys.get(id)
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownIdentity, id)
	}
	if h == nil || h.IsInfinity() || !h.InSubgroup() {
		return nil, fmt.Errorf("core: message hash is not a valid G1 element")
	}
	return h.ScalarMul(half.X), nil
}

// UserSign completes the user's protocol steps: compute S_user = x_user·h(M),
// add the SEM half, and verify the combined signature before returning it
// (the paper's step 3: "He verifies that S_M is a valid signature on M").
func UserSign(key *GDHUserKey, msg []byte, semHalf *curve.Point) (*curve.Point, error) {
	h, err := bls.HashMessage(key.Public.Pairing, msg)
	if err != nil {
		return nil, err
	}
	sig := semHalf.Add(h.ScalarMul(key.X))
	if err := key.Public.Verify(msg, sig); err != nil {
		return nil, fmt.Errorf("combined mediated signature invalid: %w", err)
	}
	return sig, nil
}

// Sign runs the full two-party signing protocol in-process; the networked
// flow lives in internal/sem.
func Sign(sem *GDHSEM, key *GDHUserKey, msg []byte) (*curve.Point, error) {
	h, err := bls.HashMessage(key.Public.Pairing, msg)
	if err != nil {
		return nil, err
	}
	semHalf, err := sem.HalfSign(key.ID, h)
	if err != nil {
		return nil, err
	}
	return UserSign(key, msg, semHalf)
}

// RecombineGDHKey reassembles the full signing scalar from both halves —
// collusion-experiment use only.
//
//cryptolint:vartime (collusion-experiment helper, never part of a protocol run)
func RecombineGDHKey(user *GDHUserKey, sem *GDHSEMKey) (*bls.PrivateKey, error) {
	if user.ID != sem.ID {
		return nil, fmt.Errorf("core: halves belong to different identities (%q, %q)", user.ID, sem.ID)
	}
	sum := new(big.Int).Add(user.X, sem.X)
	return bls.KeyFromScalar(user.Public.Pairing, sum)
}

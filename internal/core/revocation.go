// Package core implements the paper's contribution: the SEM (security
// mediator) architecture applied to pairing based cryptosystems —
//
//   - the (t, n) threshold Boneh-Franklin IBE of Section 3, with share
//     verification, robustness NIZK proofs and dishonest-share recovery;
//   - the mediated Boneh-Franklin IBE of Section 4 (2-out-of-2 split of
//     FullIdent between user and SEM, instant revocation);
//   - the mediated GDH signature of Section 5 (additive split of a BLS key).
//
// The common revocation semantics live in Registry: revoking an identity
// makes the SEM refuse to produce its half of any operation, which removes
// the user's key privileges *instantly* — no CRLs, no key reissue, and
// senders/verifiers never consult revocation state at all.
package core

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

var (
	// ErrRevoked is returned by every SEM operation on a revoked identity.
	ErrRevoked = errors.New("core: identity is revoked")

	// ErrUnknownIdentity is returned when the SEM holds no key half for the
	// identity.
	ErrUnknownIdentity = errors.New("core: unknown identity")
)

// RevocationEntry records why and when an identity was revoked.
type RevocationEntry struct {
	ID     string    `json:"id"`
	Reason string    `json:"reason"`
	When   time.Time `json:"when"`
}

// Registry is the SEM's revocation list. It is shared by all mediated
// schemes a SEM serves, so a single Revoke removes the identity's
// decryption and signing capabilities simultaneously. Safe for concurrent
// use; the zero value is not usable — construct with NewRegistry.
type Registry struct {
	mu          sync.RWMutex
	revoked     map[string]RevocationEntry
	clock       func() time.Time
	listeners   []func(id string)
	unlisteners []func(id string)
}

// NewRegistry returns an empty revocation registry.
func NewRegistry() *Registry {
	return &Registry{
		revoked: make(map[string]RevocationEntry),
		clock:   time.Now,
	}
}

// Revoke marks the identity revoked. Revoking an already-revoked identity
// updates the reason and timestamp. Registered OnRevoke listeners run
// synchronously before Revoke returns, so derived per-identity state (e.g.
// a SEM's precomputed pairing tables) is gone by the time the caller
// observes the revocation.
func (r *Registry) Revoke(id, reason string) {
	r.mu.Lock()
	r.revoked[id] = RevocationEntry{ID: id, Reason: reason, When: r.clock()}
	listeners := r.listeners
	r.mu.Unlock()
	// Listeners run outside the lock: they are allowed to call back into the
	// registry (and the id is already marked revoked, so no token can be
	// issued concurrently with the cleanup).
	for _, fn := range listeners {
		fn(id)
	}
}

// OnRevoke registers a listener invoked synchronously with the identity on
// every Revoke. Listeners must be registered before the registry is shared
// and must not block.
func (r *Registry) OnRevoke(fn func(id string)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.listeners = append(r.listeners, fn)
}

// Unrevoke restores the identity. It reports whether the identity was
// revoked. Registered OnUnrevoke listeners run synchronously (outside the
// lock, mirroring Revoke) whenever the identity was actually revoked, so
// derived per-identity state cached while the identity was suspended is
// invalidated before the caller observes the reinstatement.
func (r *Registry) Unrevoke(id string) bool {
	r.mu.Lock()
	_, ok := r.revoked[id]
	delete(r.revoked, id)
	listeners := r.unlisteners
	r.mu.Unlock()
	if ok {
		for _, fn := range listeners {
			fn(id)
		}
	}
	return ok
}

// OnUnrevoke registers a listener invoked synchronously with the identity
// whenever an Unrevoke actually reinstates it. It mirrors OnRevoke: without
// the symmetric hook, state derived while an identity sat on the revocation
// list (e.g. a replica's stale pairing cache) would survive reinstatement,
// and replication replay — which drives the registry through both
// transitions — could leave followers with derived state the leader already
// dropped. Listeners must be registered before the registry is shared and
// must not block.
func (r *Registry) OnUnrevoke(fn func(id string)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.unlisteners = append(r.unlisteners, fn)
}

// resetTo replaces the whole revocation set with entries (a replication
// snapshot install). It computes the symmetric difference against the
// current state and fires OnRevoke for identities that became revoked and
// OnUnrevoke for identities that were reinstated — listeners see the same
// transitions they would have seen had the individual mutations been
// applied one by one. Listeners run outside the lock, after the new state
// is fully in place.
func (r *Registry) resetTo(entries []RevocationEntry) {
	next := make(map[string]RevocationEntry, len(entries))
	for _, e := range entries {
		next[e.ID] = e //cryptolint:public (revocation-set keys are identity strings; the list is served verbatim by ListRevoked)
	}
	r.mu.Lock()
	var added, removed []string
	for id := range r.revoked {
		if _, ok := next[id]; !ok { //cryptolint:public (revocation-set diff over identity strings; set membership is the registry's product)
			removed = append(removed, id)
		}
	}
	for id := range next {
		if _, ok := r.revoked[id]; !ok {
			added = append(added, id)
		}
	}
	r.revoked = next
	listeners, unlisteners := r.listeners, r.unlisteners
	r.mu.Unlock()
	for _, id := range added {
		for _, fn := range listeners {
			fn(id)
		}
	}
	for _, id := range removed {
		for _, fn := range unlisteners {
			fn(id)
		}
	}
}

// IsRevoked reports whether the identity is revoked.
func (r *Registry) IsRevoked(id string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.revoked[id]
	return ok
}

// Check returns ErrRevoked (wrapped with the entry's reason) when the
// identity is revoked, nil otherwise. Every SEM operation calls this first —
// the paper's "1. Check if the identity is revoked. If it is, return Error."
func (r *Registry) Check(id string) error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if e, ok := r.revoked[id]; ok {
		return fmt.Errorf("%w: %s (%s)", ErrRevoked, id, e.Reason)
	}
	return nil
}

// Entries returns a snapshot of all revocations.
func (r *Registry) Entries() []RevocationEntry {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]RevocationEntry, 0, len(r.revoked))
	for _, e := range r.revoked {
		out = append(out, e)
	}
	return out
}

// SetClock overrides the registry's time source (tests and the simulated
// revocation-latency experiments).
func (r *Registry) SetClock(clock func() time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.clock = clock
}

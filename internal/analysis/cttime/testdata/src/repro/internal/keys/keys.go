// Package keys stubs an annotated key-holding type for fixture use.
package keys

import (
	"math/big"

	"repro/internal/fp"
)

//cryptolint:secret
type PrivateKey struct {
	ID    string   // metadata
	N     *big.Int //cryptolint:public (the modulus)
	D     *big.Int
	E     *fp.Element
	Bytes []byte
}

// String renders only metadata; basic-typed results are not secret.
func (k *PrivateKey) String() string { return k.ID }

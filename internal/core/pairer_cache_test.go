package core

import (
	"bytes"
	"crypto/rand"
	"fmt"
	"testing"
)

func TestTokenPopulatesPairerCache(t *testing.T) {
	pkg, sem := ibeFixture(t)
	alice := enroll(t, pkg, sem, "alice@example.com")
	msg := bytes.Repeat([]byte{0xA1}, msgLen)
	c, err := pkg.Public().Encrypt(rand.Reader, "alice@example.com", msg)
	if err != nil {
		t.Fatal(err)
	}

	if sem.PairerCacheLen() != 0 {
		t.Fatalf("cache pre-populated: %d entries", sem.PairerCacheLen())
	}
	for i := 0; i < 3; i++ {
		got, err := Decrypt(sem, alice, c)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, msg) {
			t.Fatalf("round %d: wrong plaintext", i)
		}
	}
	if sem.PairerCacheLen() != 1 {
		t.Fatalf("cache holds %d entries, want 1", sem.PairerCacheLen())
	}
	st := sem.PairerCacheStats()
	// First token misses (and may re-probe), the two repeats must hit.
	if st.Hits < 2 {
		t.Fatalf("stats = %+v, want ≥2 hits", st)
	}
}

func TestRevokeDropsPairerTable(t *testing.T) {
	pkg, sem := ibeFixture(t)
	alice := enroll(t, pkg, sem, "alice@example.com")
	msg := bytes.Repeat([]byte{0xB2}, msgLen)
	c, err := pkg.Public().Encrypt(rand.Reader, "alice@example.com", msg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decrypt(sem, alice, c); err != nil {
		t.Fatal(err)
	}
	if sem.PairerCacheLen() != 1 {
		t.Fatalf("cache holds %d entries before revoke", sem.PairerCacheLen())
	}

	sem.Registry().Revoke("alice@example.com", "compromised")
	if sem.PairerCacheLen() != 0 {
		t.Fatal("revocation must drop the identity's precomputed table")
	}
	if _, err := sem.Token("alice@example.com", c.U); err == nil {
		t.Fatal("token issued for revoked identity")
	}

	// Unrevoking restores service (the table is rebuilt on demand).
	sem.Registry().Unrevoke("alice@example.com")
	got, err := Decrypt(sem, alice, c)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("wrong plaintext after unrevoke")
	}
	if sem.PairerCacheLen() != 1 {
		t.Fatal("table not rebuilt after unrevoke")
	}
}

func TestReRegisterInvalidatesPairerTable(t *testing.T) {
	pkg, sem := ibeFixture(t)
	alice := enroll(t, pkg, sem, "alice@example.com")
	msg := bytes.Repeat([]byte{0xC3}, msgLen)
	c, err := pkg.Public().Encrypt(rand.Reader, "alice@example.com", msg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decrypt(sem, alice, c); err != nil {
		t.Fatal(err)
	}

	// Fresh key split for the same identity: the old user half must stop
	// working and the new one must succeed — a stale cached pairing program
	// would break the second property.
	alice2 := enroll(t, pkg, sem, "alice@example.com")
	if sem.PairerCacheLen() != 0 {
		t.Fatal("re-registration must invalidate the precomputed table")
	}
	if _, err := Decrypt(sem, alice, c); err == nil {
		t.Fatal("old key half still decrypts after re-registration")
	}
	got, err := Decrypt(sem, alice2, c)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("wrong plaintext with re-registered key")
	}
}

func TestPairerCacheEviction(t *testing.T) {
	pkg, sem := ibeFixture(t)
	sem.SetPairerCacheCapacity(2)
	msg := bytes.Repeat([]byte{0xD4}, msgLen)

	users := make([]*UserKeyHalf, 3)
	for i := range users {
		id := fmt.Sprintf("user%d@example.com", i)
		users[i] = enroll(t, pkg, sem, id)
		c, err := pkg.Public().Encrypt(rand.Reader, id, msg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Decrypt(sem, users[i], c); err != nil {
			t.Fatal(err)
		}
	}
	if got := sem.PairerCacheLen(); got != 2 {
		t.Fatalf("cache holds %d entries, want capacity 2", got)
	}
	if st := sem.PairerCacheStats(); st.Evictions != 1 {
		t.Fatalf("stats = %+v, want exactly 1 eviction", st)
	}

	// The evicted identity (least recently used = user0) is still served,
	// just recomputed.
	c, err := pkg.Public().Encrypt(rand.Reader, "user0@example.com", msg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decrypt(sem, users[0], c)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("wrong plaintext for evicted identity")
	}
}

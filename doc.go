// Package repro reproduces "Efficient revocation and threshold pairing
// based cryptosystems" (Libert & Quisquater, PODC 2003): a from-scratch
// pairing substrate, the (t, n) threshold Boneh-Franklin IBE, the mediated
// (SEM) Boneh-Franklin IBE and GDH signature, the IB-mRSA baseline, an
// online SEM daemon, and a benchmark harness that regenerates every table
// and figure of EXPERIMENTS.md.
//
// The implementation lives under internal/ (see DESIGN.md for the module
// map); the runnable entry points are cmd/semd, cmd/pkgen, cmd/medcli and
// cmd/benchtab, and the examples/ directory shows the public API on
// realistic scenarios. The root-level bench_test.go binds each experiment
// to a testing.B benchmark.
package repro

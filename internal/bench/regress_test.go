package bench

import (
	"strings"
	"testing"
)

func report(params string, entries ...BaselineEntry) *BaselineReport {
	return &BaselineReport{Params: params, Entries: entries}
}

func TestCompareBaselinesFlagsOnlyRealRegressions(t *testing.T) {
	ref := report("paper",
		BaselineEntry{Name: "pair", NsPerOp: 1000},
		BaselineEntry{Name: "pair.fixed", NsPerOp: 500},
		BaselineEntry{Name: "bf.encrypt", NsPerOp: 2000},
	)
	fresh := report("paper",
		BaselineEntry{Name: "pair", NsPerOp: 1100},      // +10% — within tolerance
		BaselineEntry{Name: "pair.fixed", NsPerOp: 900}, // +80% — regression
		BaselineEntry{Name: "bf.encrypt", NsPerOp: 1500},
		BaselineEntry{Name: "brand.new", NsPerOp: 1}, // not in ref — ignored
	)
	regs, err := CompareBaselines(ref, fresh, 15)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || regs[0].Name != "pair.fixed" {
		t.Fatalf("regressions = %+v, want exactly pair.fixed", regs)
	}
	if regs[0].Percent < 79 || regs[0].Percent > 81 {
		t.Fatalf("slowdown = %.1f%%, want ~80%%", regs[0].Percent)
	}
	if s := regs[0].String(); !strings.Contains(s, "pair.fixed") {
		t.Fatalf("String() = %q", s)
	}
}

func fptr(v float64) *float64 { return &v }

func TestCompareBaselinesAllocGate(t *testing.T) {
	ref := report("paper",
		BaselineEntry{Name: "fp.mul", NsPerOp: 100, AllocsPerOp: fptr(0)},
		BaselineEntry{Name: "pair", NsPerOp: 1000, AllocsPerOp: fptr(100)},
		BaselineEntry{Name: "legacy", NsPerOp: 1000}, // pre-column snapshot
	)
	fresh := report("paper",
		BaselineEntry{Name: "fp.mul", NsPerOp: 100, AllocsPerOp: fptr(2)},   // zero-alloc claim broken
		BaselineEntry{Name: "pair", NsPerOp: 1000, AllocsPerOp: fptr(105)},  // within tolerance
		BaselineEntry{Name: "legacy", NsPerOp: 1000, AllocsPerOp: fptr(50)}, // no ref column — skipped
	)
	regs, err := CompareBaselines(ref, fresh, 15)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || regs[0].Name != "fp.mul" || regs[0].Metric != "allocs/op" {
		t.Fatalf("regressions = %+v, want exactly fp.mul allocs/op", regs)
	}
	if s := regs[0].String(); !strings.Contains(s, "allocs/op") {
		t.Fatalf("String() = %q, want allocs/op metric", s)
	}

	// A large allocation growth over a nonzero reference is flagged too.
	fresh2 := report("paper",
		BaselineEntry{Name: "pair", NsPerOp: 1000, AllocsPerOp: fptr(300)},
	)
	regs, err = CompareBaselines(ref, fresh2, 15)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || regs[0].Metric != "allocs/op" {
		t.Fatalf("regressions = %+v, want one allocs/op regression", regs)
	}
}

func TestCompareBaselinesGenerousToleranceAcceptsAll(t *testing.T) {
	ref := report("paper", BaselineEntry{Name: "pair", NsPerOp: 1000})
	fresh := report("paper", BaselineEntry{Name: "pair", NsPerOp: 3000})
	regs, err := CompareBaselines(ref, fresh, 400)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("regressions = %+v with 400%% tolerance", regs)
	}
}

func TestCompareBaselinesGuards(t *testing.T) {
	paper := report("paper", BaselineEntry{Name: "pair", NsPerOp: 1})
	toy := report("toy", BaselineEntry{Name: "pair", NsPerOp: 1})
	if _, err := CompareBaselines(paper, toy, 15); err == nil {
		t.Error("parameter-set mismatch accepted")
	}
	disjoint := report("paper", BaselineEntry{Name: "other", NsPerOp: 1})
	if _, err := CompareBaselines(paper, disjoint, 15); err == nil {
		t.Error("disjoint entry sets accepted")
	}
	if _, err := CompareBaselines(paper, paper, -1); err == nil {
		t.Error("negative tolerance accepted")
	}
}

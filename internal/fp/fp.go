// Package fp is a Montgomery-representation prime-field backend on raw
// little-endian []uint64 limb vectors, built from math/bits primitives
// (Add64/Sub64/Mul64) with no math/big on any arithmetic path.
//
// This is the layer every pairing, scalar multiplication and SEM token in
// the repository bottoms out in: internal/gf stores its F_p² coordinates as
// fp limb vectors and the Miller-loop machinery in internal/pairing runs
// its point arithmetic directly on them. math/big survives only at the
// edges — serialization, hashing, scalar I/O — where a value crosses into
// or out of the field (see FromBig/ToBig).
//
// Representation. An element is a []uint64 of exactly Field.Limbs() limbs,
// least-significant first, holding a·R mod p for the logical value a, where
// R = 2^(64·limbs) (Montgomery form). All operations require fully reduced
// inputs (< p) and produce fully reduced outputs. Multiplication is CIOS
// (coarsely integrated operand scanning) Montgomery multiplication; the
// paper shape — 512-bit p, 8 limbs — takes a specialized fixed-bound path
// (fp8.go) selected at Field construction by limb count, every other width
// the generic any-width fallback in this file.
//
// Allocation. No operation allocates: scratch lives in fixed-size stack
// arrays bounded by MaxLimbs, and destinations are caller-provided slices
// (obtain them with NewElt or reuse). This zero-alloc property is
// regression-gated by the benchtab baseline (allocs_per_op column).
//
// Timing. The arithmetic is branch-free on element values: carries are
// folded with masks (ConstantTimeSelect-style on limbs, see ctSelect /
// nonzeroMask), and Equal/IsZero accumulate over all limbs before
// collapsing to a bool. Branching on public quantities — the modulus, limb
// counts, exponent bits of the (public) inversion exponent p−2 — is fine
// and used freely.
package fp

import (
	"errors"
	"fmt"
	"math/big"
	"math/bits"
)

// MaxLimbs bounds the supported modulus width (16 limbs = 1024 bits). The
// bound exists so per-operation scratch can live in fixed-size stack
// arrays; every parameter set in the repository (96- to 512-bit p) is far
// below it.
const MaxLimbs = 16

// ErrNotInvertible is returned by Inv for the zero element.
var ErrNotInvertible = errors.New("fp: zero is not invertible")

// Field holds the modulus-derived constants of one F_p. Immutable after
// New and safe for concurrent use; all scratch is per-call.
type Field struct {
	n    int      // limb count
	p    []uint64 // modulus, little-endian limbs
	n0   uint64   // −p⁻¹ mod 2^64 (Montgomery constant)
	one  []uint64 // R mod p: the Montgomery form of 1
	rr   []uint64 // R² mod p: converts standard → Montgomery via one Mul
	pBig *big.Int // the modulus (for edge conversions and errors)
	pm2  *big.Int // p − 2, the (public) Fermat inversion exponent

	// lazy is set when p leaves at least two spare bits in its top limb
	// (bitlen(p) ≤ 64n − 2). Then sums of up to four limb products stay
	// below p·R and the F_p² tower can accumulate wide products and pay a
	// single Montgomery reduction per output coordinate (see MulFp2).
	lazy bool
	p2w  []uint64 // 2·p² as 2n limbs (offset making lazy differences non-negative)
}

// New constructs the field of the odd prime p (at most MaxLimbs·64 bits).
// Primality is the caller's contract — Inv computes x^(p−2) and silently
// returns garbage for composite p — and is not re-verified here; every
// caller in this repository passes a generated or fixed pairing prime.
func New(p *big.Int) (*Field, error) {
	if p.Sign() <= 0 || p.Bit(0) == 0 || p.BitLen() <= 1 {
		return nil, fmt.Errorf("fp: modulus must be an odd prime > 2")
	}
	n := (p.BitLen() + 63) / 64
	if n > MaxLimbs {
		return nil, fmt.Errorf("fp: modulus of %d bits exceeds the %d-bit limb-vector bound", p.BitLen(), MaxLimbs*64)
	}
	f := &Field{
		n:    n,
		p:    make([]uint64, n),
		pBig: new(big.Int).Set(p),
		pm2:  new(big.Int).Sub(p, big.NewInt(2)),
	}
	limbsFromBig(f.p, p)

	// n0 = −p⁻¹ mod 2^64 by Newton iteration: y ← y·(2 − p₀·y) doubles the
	// number of correct low bits each round; 6 rounds cover 64 bits.
	y := f.p[0]
	for i := 0; i < 6; i++ {
		y *= 2 - f.p[0]*y
	}
	f.n0 = -y

	r := new(big.Int).Lsh(big.NewInt(1), uint(64*n))
	r.Mod(r, p)
	f.one = make([]uint64, n)
	limbsFromBig(f.one, r)
	rr := new(big.Int).Lsh(big.NewInt(1), uint(128*n))
	rr.Mod(rr, p)
	f.rr = make([]uint64, n)
	limbsFromBig(f.rr, rr)

	f.lazy = p.BitLen() <= 64*n-2
	if f.lazy {
		p2 := new(big.Int).Mul(p, p)
		p2.Lsh(p2, 1)
		f.p2w = make([]uint64, 2*n)
		limbsFromBig(f.p2w, p2)
	}
	return f, nil
}

// Limbs returns the limb count of an element.
func (f *Field) Limbs() int { return f.n }

// P returns a copy of the modulus.
func (f *Field) P() *big.Int { return new(big.Int).Set(f.pBig) }

// NewElt allocates a zero element.
func (f *Field) NewElt() []uint64 { return make([]uint64, f.n) }

// SetZero sets z = 0.
//
//cryptolint:hotpath
func (f *Field) SetZero(z []uint64) {
	for i := range z {
		z[i] = 0
	}
}

// SetOne sets z = 1 (Montgomery form R mod p).
//
//cryptolint:hotpath
func (f *Field) SetOne(z []uint64) { copy(z, f.one) }

// Set copies x into z.
//
//cryptolint:hotpath
func (f *Field) Set(z, x []uint64) { copy(z, x) }

// IsZero reports whether x = 0, accumulating over all limbs before the
// final collapse (no data-dependent early exit).
//
//cryptolint:hotpath
func (f *Field) IsZero(x []uint64) bool {
	var acc uint64
	for i := 0; i < f.n; i++ {
		acc |= x[i]
	}
	return acc == 0 //cryptolint:public (branch-free accumulator collapse; the bool verdict is the API)
}

// IsOne reports whether x = 1 (branch-free over the limbs).
//
//cryptolint:hotpath
func (f *Field) IsOne(x []uint64) bool {
	var acc uint64
	for i := 0; i < f.n; i++ {
		acc |= x[i] ^ f.one[i]
	}
	return acc == 0 //cryptolint:public (branch-free accumulator collapse; the bool verdict is the API)
}

// Equal reports whether x = y. Like IsZero it XOR-accumulates every limb
// pair before collapsing, so timing is independent of where the vectors
// first differ.
//
//cryptolint:hotpath
func (f *Field) Equal(x, y []uint64) bool {
	var acc uint64
	for i := 0; i < f.n; i++ {
		acc |= x[i] ^ y[i]
	}
	return acc == 0 //cryptolint:public (branch-free accumulator collapse; the bool verdict is the API)
}

// Select sets z = x if v = 1 and z = y if v = 0, in constant time
// (crypto/subtle's ConstantTimeSelect lifted to limb vectors).
//
//cryptolint:hotpath
func Select(z, x, y []uint64, v int) {
	m := uint64(0) - uint64(v&1)
	for i := range z {
		z[i] = (x[i] & m) | (y[i] &^ m)
	}
}

// nonzeroMask returns all-ones if v ≠ 0 and zero otherwise, branch-free.
func nonzeroMask(v uint64) uint64 {
	return -((v | -v) >> 63)
}

// ctSelect folds the CIOS/Add tail: z[i] = keep[i] if mask is all-ones,
// else z[i] unchanged (z already holds the other candidate).
//
//cryptolint:hotpath
func ctSelect(z, keep []uint64, mask uint64) {
	for i := range z {
		z[i] = (keep[i] & mask) | (z[i] &^ mask)
	}
}

// Add sets z = x + y mod p. Aliasing of z with x or y is allowed (all
// linear ops here are single-pass with carries in registers).
//
//cryptolint:hotpath
func (f *Field) Add(z, x, y []uint64) {
	n := f.n
	var sb [MaxLimbs]uint64
	s := sb[:n]
	var c uint64
	for i := 0; i < n; i++ {
		s[i], c = bits.Add64(x[i], y[i], c)
	}
	var b uint64
	for i := 0; i < n; i++ {
		z[i], b = bits.Sub64(s[i], f.p[i], b)
	}
	// Keep the raw sum only when it did not overflow (c = 0) and the
	// subtraction borrowed (sum < p): mask = (c < b).
	_, keepSum := bits.Sub64(c, b, 0)
	ctSelect(z, s, -keepSum)
}

// Double sets z = 2x mod p.
//
//cryptolint:hotpath
func (f *Field) Double(z, x []uint64) { f.Add(z, x, x) }

// Sub sets z = x − y mod p (aliasing allowed).
//
//cryptolint:hotpath
func (f *Field) Sub(z, x, y []uint64) {
	n := f.n
	var b uint64
	for i := 0; i < n; i++ {
		z[i], b = bits.Sub64(x[i], y[i], b)
	}
	// Add p back iff the subtraction borrowed, via a masked addend.
	m := -b
	var c uint64
	for i := 0; i < n; i++ {
		z[i], c = bits.Add64(z[i], f.p[i]&m, c)
	}
}

// Neg sets z = −x mod p (0 maps to 0).
//
//cryptolint:hotpath
func (f *Field) Neg(z, x []uint64) {
	n := f.n
	var acc uint64
	for i := 0; i < n; i++ {
		acc |= x[i]
	}
	m := nonzeroMask(acc) // all-ones unless x = 0 (p − 0 = p would be unreduced)
	var b uint64
	for i := 0; i < n; i++ {
		z[i], b = bits.Sub64(f.p[i], x[i], b)
		z[i] &= m
	}
}

// madd returns the high and low words of a·b + c + d. The sum cannot
// overflow 128 bits: (2^64−1)² + 2·(2^64−1) = 2^128 − 1.
//
//cryptolint:hotpath
func madd(a, b, c, d uint64) (hi, lo uint64) {
	hi, lo = bits.Mul64(a, b)
	var carry uint64
	lo, carry = bits.Add64(lo, c, 0)
	hi += carry
	lo, carry = bits.Add64(lo, d, 0)
	hi += carry
	return
}

// Mul sets z = x·y·R⁻¹ mod p — the Montgomery product, which is ordinary
// multiplication when all three live in Montgomery form. Aliasing of z
// with x and/or y is allowed. Dispatches to the unrolled 8-limb path for
// the paper shape; any other width takes the generic CIOS fallback.
//
//cryptolint:hotpath
func (f *Field) Mul(z, x, y []uint64) {
	if f.n == 8 {
		f.montMul8(z, x, y)
		return
	}
	f.montMulGeneric(z, x, y)
}

// Square sets z = x²·R⁻¹ mod p.
//
//cryptolint:hotpath
func (f *Field) Square(z, x []uint64) { f.Mul(z, x, x) }

// montMulGeneric is CIOS Montgomery multiplication for any width up to
// MaxLimbs: one fused pass interleaving the product accumulation of x·y[i]
// with the reduction step that cancels the lowest live limb.
//
//cryptolint:hotpath
func (f *Field) montMulGeneric(z, x, y []uint64) {
	n := f.n
	p := f.p
	var tb [MaxLimbs + 2]uint64
	t := tb[: n+2 : n+2]
	for i := 0; i <= n+1; i++ {
		t[i] = 0
	}
	for i := 0; i < n; i++ {
		// t += x · y[i]
		xi := y[i]
		var c uint64
		for j := 0; j < n; j++ {
			c, t[j] = madd(x[j], xi, t[j], c)
		}
		var c2 uint64
		t[n], c2 = bits.Add64(t[n], c, 0)
		t[n+1] = c2

		// m cancels t[0]; shift the vector down one limb while adding m·p.
		m := t[0] * f.n0
		c, _ = madd(m, p[0], t[0], 0)
		for j := 1; j < n; j++ {
			c, t[j-1] = madd(m, p[j], t[j], c)
		}
		t[n-1], c = bits.Add64(t[n], c, 0)
		t[n], _ = bits.Add64(t[n+1], c, 0)
	}
	// t < 2p over n+1 limbs: one conditional subtraction finishes.
	var b uint64
	for i := 0; i < n; i++ {
		z[i], b = bits.Sub64(t[i], p[i], b)
	}
	_, keepT := bits.Sub64(t[n], 0, b) // borrow ⇒ t < p ⇒ keep t
	ctSelect(z, t[:n], -keepT)
}

// FromBig converts a standard-form value into Montgomery form. The input
// must already be reduced: 0 ≤ x < p. This is an edge operation (key
// loading, hashing, deserialization) and the only fp entry point fed by
// math/big values.
func (f *Field) FromBig(z []uint64, x *big.Int) error {
	if x.Sign() < 0 || x.Cmp(f.pBig) >= 0 { //cryptolint:public (range-validity check against the public modulus at the sanctioned big.Int edge)
		return fmt.Errorf("fp: FromBig input out of range [0, p)")
	}
	limbsFromBig(z, x)
	f.Mul(z, z, f.rr) // x·R² · R⁻¹ = x·R
	return nil
}

// ToBig converts a Montgomery-form element back to a standard big.Int
// (edge operation; allocates its result by design).
func (f *Field) ToBig(x []uint64) *big.Int {
	var tb [2 * MaxLimbs]uint64
	t := tb[: 2*f.n : 2*f.n]
	copy(t, x) // high half stays zero: REDC(x) = x·R⁻¹, undoing the form
	var sb [MaxLimbs]uint64
	s := sb[:f.n]
	f.reduceWide(s, t)
	return limbsToBig(s)
}

// Exp sets z = x^e mod p (Montgomery in, Montgomery out) by MSB-first
// square-and-multiply. The bit pattern of e is treated as public — the
// only in-repo exponent is the modulus-derived p−2 of Inv.
//
//cryptolint:hotpath
func (f *Field) Exp(z, x []uint64, e *big.Int) {
	n := f.n
	var rb, bb [MaxLimbs]uint64
	r := rb[:n]
	base := bb[:n]
	f.SetOne(r)
	copy(base, x)
	for i := e.BitLen() - 1; i >= 0; i-- {
		f.Square(r, r)
		if e.Bit(i) == 1 {
			f.Mul(r, r, base)
		}
	}
	copy(z, r)
}

// Inv sets z = x⁻¹ mod p via Fermat (x^(p−2)); ErrNotInvertible for x = 0.
// The exponent ladder is fixed by the public modulus, so unlike the
// extended-Euclidean big.Int.ModInverse it has no secret-dependent
// branching or allocation.
//
//cryptolint:hotpath
func (f *Field) Inv(z, x []uint64) error {
	if f.IsZero(x) {
		return ErrNotInvertible
	}
	f.Exp(z, x, f.pm2)
	return nil
}

// InvVarTime sets z = x⁻¹ mod p via math/big's binary extended GCD —
// several times faster than the Fermat ladder of Inv at 512-bit sizes, but
// variable-time and allocating. Use it only on public values (Miller line
// denominators, final-exponentiation inputs); secret material goes through
// Inv.
func (f *Field) InvVarTime(z, x []uint64) error {
	if f.IsZero(x) {
		return ErrNotInvertible
	}
	v := f.ToBig(x)
	if v.ModInverse(v, f.pBig) == nil {
		return ErrNotInvertible
	}
	return f.FromBig(z, v)
}

// --- wide (2n-limb) accumulation: the F_p² lazy-reduction layer ---

// Lazy reports whether the modulus leaves the two spare top bits that make
// single-reduction wide accumulation sound (see MulFp2).
func (f *Field) Lazy() bool { return f.lazy }

// mulWide sets t (2n limbs) = x·y, full product, no reduction.
//
//cryptolint:hotpath
func (f *Field) mulWide(t, x, y []uint64) {
	n := f.n
	for i := 0; i < 2*n; i++ {
		t[i] = 0
	}
	for i := 0; i < n; i++ {
		t[i+n] = addMulVVW(t[i:i+n], x, y[i])
	}
}

// addMulVVW sets z += x·y for a single word y and returns the carry out of
// the top; len(x) = len(z).
//
//cryptolint:hotpath
func addMulVVW(z, x []uint64, y uint64) (carry uint64) {
	for i := 0; i < len(z); i++ {
		hi, lo := bits.Mul64(x[i], y)
		var c uint64
		lo, c = bits.Add64(lo, carry, 0)
		hi += c
		z[i], c = bits.Add64(z[i], lo, 0)
		carry = hi + c
	}
	return
}

// reduceWide performs the Montgomery reduction z = t·R⁻¹ mod p of a
// 2n-limb accumulator t < p·R, destroying t. This is the REDC half of a
// Montgomery multiplication, split out so the F_p² tower can sum several
// wide products first and reduce once.
//
//cryptolint:hotpath
func (f *Field) reduceWide(z, t []uint64) {
	n := f.n
	p := f.p
	var c uint64
	for i := 0; i < n; i++ {
		m := t[i] * f.n0
		c2 := addMulVVW(t[i:i+n], p, m)
		nx, c3 := bits.Add64(t[i+n], c, 0)
		nx, c4 := bits.Add64(nx, c2, 0)
		t[i+n] = nx
		c = c3 + c4
	}
	// Result in t[n:2n] with top carry c; t/R < 2p, conditional subtract.
	var b uint64
	for i := 0; i < n; i++ {
		z[i], b = bits.Sub64(t[i+n], p[i], b)
	}
	_, keepT := bits.Sub64(c, 0, b)
	ctSelect(z, t[n:2*n], -keepT)
}

// addWide sets t += u over 2n limbs (caller guarantees no overflow; all
// lazy-path sums are bounded below p·R < 2^(128n)/4).
//
//cryptolint:hotpath
func addWide(t, u []uint64) {
	var c uint64
	for i := 0; i < len(t); i++ {
		t[i], c = bits.Add64(t[i], u[i], c)
	}
}

// subWide sets t −= u over 2n limbs (caller guarantees t ≥ u).
//
//cryptolint:hotpath
func subWide(t, u []uint64) {
	var b uint64
	for i := 0; i < len(t); i++ {
		t[i], b = bits.Sub64(t[i], u[i], b)
	}
}

// MulFp2 computes the product (zr + zi·i) = (ar + ai·i)·(br + bi·i) in
// F_p[i]/(i² + 1) — the quadratic extension internal/gf exposes — with the
// Karatsuba split
//
//	v0 = ar·br, v1 = ai·bi, v2 = (ar+ai)·(br+bi)
//	zr = v0 − v1,           zi = v2 − v0 − v1
//
// i.e. three base multiplications instead of four. When the modulus has
// two spare top bits (Lazy), the three products are accumulated at full
// double width and each output coordinate pays exactly one Montgomery
// reduction: zr reduces v0 + 2p² − v1 (the 2p² offset keeps the
// accumulator non-negative; it is ≡ 0 mod p and the bound 3p² < p·R holds
// by the spare bits), zi reduces v2 − v0 − v1 ≥ 0 directly (< 4p² < p·R).
// Without spare bits each product is reduced individually — still three
// reductions against schoolbook's four multiplications.
//
// Any of zr, zi may alias any input coordinate.
//
//cryptolint:hotpath
func (f *Field) MulFp2(zr, zi, ar, ai, br, bi []uint64) {
	n := f.n
	var sb1, sb2 [MaxLimbs]uint64
	s1 := sb1[:n] // ar + ai
	s2 := sb2[:n] // br + bi
	if f.lazy {
		// Plain (non-modular) sums: bounded by 2p, safe for the 4p² product
		// bound. Carry out of the top limb is impossible with 2 spare bits.
		var c uint64
		for i := 0; i < n; i++ {
			s1[i], c = bits.Add64(ar[i], ai[i], c)
		}
		c = 0
		for i := 0; i < n; i++ {
			s2[i], c = bits.Add64(br[i], bi[i], c)
		}
		var w0, w1, w2 [2 * MaxLimbs]uint64
		t0 := w0[: 2*n : 2*n]
		t1 := w1[: 2*n : 2*n]
		t2 := w2[: 2*n : 2*n]
		f.mulWide(t0, ar, br)
		f.mulWide(t1, ai, bi)
		f.mulWide(t2, s1, s2)
		subWide(t2, t0) // t2 = cross products + t1
		subWide(t2, t1) // ≥ 0 by the Karatsuba identity
		addWide(t0, f.p2w)
		subWide(t0, t1) // v0 − v1 + 2p² ≥ 0
		f.reduceWide(zr, t0)
		f.reduceWide(zi, t2)
		return
	}
	// Fully reduced Karatsuba: three CIOS products, modular linear fixes.
	f.Add(s1, ar, ai)
	f.Add(s2, br, bi)
	var vb0, vb1, vb2 [MaxLimbs]uint64
	v0 := vb0[:n]
	v1 := vb1[:n]
	v2 := vb2[:n]
	f.Mul(v0, ar, br)
	f.Mul(v1, ai, bi)
	f.Mul(v2, s1, s2)
	f.Sub(zr, v0, v1)
	f.Sub(v2, v2, v0)
	f.Sub(zi, v2, v1)
}

// SquareFp2 computes (zr + zi·i) = (ar + ai·i)² via
// (a+bi)² = (a+b)(a−b) + (2ab)i — two base multiplications. Outputs may
// alias inputs.
//
//cryptolint:hotpath
func (f *Field) SquareFp2(zr, zi, ar, ai []uint64) {
	n := f.n
	var sb, db, rb [MaxLimbs]uint64
	s := sb[:n]
	d := db[:n]
	r := rb[:n]
	f.Add(s, ar, ai)
	f.Sub(d, ar, ai)
	f.Mul(r, ar, ai) // before zr/zi clobber aliased inputs
	f.Mul(zr, s, d)
	f.Double(zi, r)
}

// --- limb ↔ big.Int edges (allocation confined to ToBig/limbsToBig) ---

// limbsFromBig fills z (little-endian limbs, zero-padded) from a
// non-negative x that fits len(z) limbs.
func limbsFromBig(z []uint64, x *big.Int) {
	for i := range z {
		z[i] = 0
	}
	words := x.Bits()
	if bits.UintSize == 64 {
		for i, w := range words {
			z[i] = uint64(w)
		}
		return
	}
	for i, w := range words { // 32-bit big.Word
		z[i/2] |= uint64(w) << (32 * uint(i%2))
	}
}

// limbsToBig builds a big.Int from little-endian limbs.
func limbsToBig(x []uint64) *big.Int {
	if bits.UintSize == 64 {
		words := make([]big.Word, len(x))
		for i, w := range x {
			words[i] = big.Word(w)
		}
		return new(big.Int).SetBits(words)
	}
	words := make([]big.Word, 2*len(x))
	for i, w := range x {
		words[2*i] = big.Word(uint32(w))
		words[2*i+1] = big.Word(uint32(w >> 32))
	}
	return new(big.Int).SetBits(words)
}

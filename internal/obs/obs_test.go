package obs

import (
	"math/bits"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestRecordPathZeroAlloc is the package's contract: incrementing a
// counter, moving a gauge and recording into a histogram allocate nothing.
// Instrumentation sits on the pairing hot paths, so this is load-bearing,
// not cosmetic — the same discipline PR4 asserts for field ops.
func TestRecordPathZeroAlloc(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("t_total", "test", Label{"op", "x"})
	g := reg.Gauge("t_gauge", "test")
	h := reg.Histogram("t_seconds", "test")
	if n := testing.AllocsPerRun(1000, func() { c.Inc(); c.Add(3) }); n != 0 {
		t.Fatalf("counter record path allocates %v bytes/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { g.Set(7); g.Add(-2); g.Inc(); g.Dec() }); n != 0 {
		t.Fatalf("gauge record path allocates %v bytes/op", n)
	}
	d := 380 * time.Microsecond
	if n := testing.AllocsPerRun(1000, func() { h.Observe(d) }); n != 0 {
		t.Fatalf("histogram record path allocates %v bytes/op", n)
	}
	// Nil metrics (uninstrumented components) are also alloc- and
	// panic-free.
	var nc *Counter
	var ng *Gauge
	var nh *Histogram
	if n := testing.AllocsPerRun(1000, func() { nc.Inc(); ng.Set(1); nh.Observe(d) }); n != 0 {
		t.Fatalf("nil record path allocates %v bytes/op", n)
	}
}

func TestCounterGaugeValues(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if c.Value() != 42 {
		t.Fatalf("counter = %d, want 42", c.Value())
	}
	var g Gauge
	g.Set(10)
	g.Add(-3)
	g.Dec()
	g.Inc()
	if g.Value() != 7 {
		t.Fatalf("gauge = %d, want 7", g.Value())
	}
}

func TestNilRegistryReturnsLiveMetrics(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "")
	c.Inc()
	if c.Value() != 1 {
		t.Fatal("nil-registry counter is not live")
	}
	h := r.Histogram("x_seconds", "")
	h.Observe(time.Millisecond)
	if h.Snapshot().Count != 1 {
		t.Fatal("nil-registry histogram is not live")
	}
	r.CounterFunc("f_total", "", func() uint64 { return 0 })
	r.GaugeFunc("f_gauge", "", func() int64 { return 0 })
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
}

func TestRegistrationIdempotent(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("dup_total", "h", Label{"op", "a"})
	b := reg.Counter("dup_total", "h", Label{"op", "a"})
	if a != b {
		t.Fatal("same (name, labels) did not return the same counter")
	}
	other := reg.Counter("dup_total", "h", Label{"op", "b"})
	if a == other {
		t.Fatal("different labels returned the same counter")
	}
	// Kind conflict: live but unregistered, first registration keeps the
	// name.
	g := reg.Gauge("dup_total", "h")
	g.Set(5)
	if g.Value() != 5 {
		t.Fatal("conflicting registration is not live")
	}
	var out strings.Builder
	if err := reg.WritePrometheus(&out); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "# TYPE dup_total gauge") {
		t.Fatal("kind conflict overwrote the family type")
	}
}

func TestBucketIndexMonotone(t *testing.T) {
	// Every bucket's samples fall strictly below its bound and at or above
	// the previous bound.
	prev := -1
	for ns := uint64(1); ns < 1<<50; ns += ns/3 + 1 {
		idx := bucketIndex(ns)
		if idx < prev {
			t.Fatalf("bucketIndex not monotone at %d: %d after %d", ns, idx, prev)
		}
		prev = idx
		if idx < len(bucketBounds) && ns >= bucketBounds[idx] {
			t.Fatalf("value %d ≥ its bucket bound %d", ns, bucketBounds[idx])
		}
		if idx > 0 && idx-1 < len(bucketBounds) && ns < bucketBounds[idx-1] {
			t.Fatalf("value %d < previous bound %d", ns, bucketBounds[idx-1])
		}
	}
	if got := bucketIndex(0); got != 0 {
		t.Fatalf("bucketIndex(0) = %d", got)
	}
	if got := bucketIndex(1 << 63); got != numBuckets-1 {
		t.Fatalf("bucketIndex(huge) = %d, want overflow %d", got, numBuckets-1)
	}
	_ = bits.Len64 // keep the import honest if constants change
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 100 observations at 1ms, 10 at 10ms, 1 at 100ms.
	for i := 0; i < 100; i++ {
		h.Observe(time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(10 * time.Millisecond)
	}
	h.Observe(100 * time.Millisecond)
	s := h.Snapshot()
	if s.Count != 111 {
		t.Fatalf("count = %d", s.Count)
	}
	check := func(q float64, want time.Duration) {
		t.Helper()
		got := s.Quantile(q)
		// Log-linear buckets with 4 sub-buckets per octave: within 25%.
		if got < want || float64(got) > float64(want)*1.25 {
			t.Fatalf("q%v = %v, want within [%v, %v]", q, got, want, time.Duration(float64(want)*1.25))
		}
	}
	check(0.50, time.Millisecond)
	check(0.95, 10*time.Millisecond)
	check(0.999, 100*time.Millisecond)
	if m := s.Mean(); m < time.Millisecond || m > 3*time.Millisecond {
		t.Fatalf("mean = %v", m)
	}
	var empty Histogram
	if q := empty.Snapshot().Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile = %v", q)
	}
}

// TestConcurrentRecordingAndSnapshots drives counters and histograms from
// many goroutines while snapshots and exports run concurrently; under
// -race this is the subsystem's thread-safety proof, and the final totals
// must be exact (atomic, not racy, accumulation).
func TestConcurrentRecordingAndSnapshots(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("cc_total", "concurrent counter")
	h := reg.Histogram("ch_seconds", "concurrent histogram")
	g := reg.Gauge("cg_inflight", "concurrent gauge")
	const workers = 8
	const perWorker = 5000
	stop := make(chan struct{})
	var scrapers, recorders sync.WaitGroup
	// Concurrent scrapers: exports and snapshots must be safe (and sane)
	// while recording is in full flight.
	for i := 0; i < 2; i++ {
		scrapers.Add(1)
		go func() {
			defer scrapers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var sb strings.Builder
				if err := reg.WritePrometheus(&sb); err != nil {
					t.Error(err)
					return
				}
				s := h.Snapshot()
				if s.Sum < 0 {
					t.Error("negative snapshot sum")
					return
				}
			}
		}()
	}
	for i := 0; i < workers; i++ {
		recorders.Add(1)
		go func() {
			defer recorders.Done()
			for j := 0; j < perWorker; j++ {
				c.Inc()
				g.Inc()
				h.Observe(time.Duration(j%1000) * time.Microsecond)
				g.Dec()
			}
		}()
	}
	recorders.Wait()
	close(stop)
	scrapers.Wait()

	if got := c.Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	s := h.Snapshot()
	if s.Count != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", s.Count, workers*perWorker)
	}
	var bucketSum uint64
	for _, b := range s.buckets {
		bucketSum += b
	}
	if bucketSum != s.Count {
		t.Fatalf("bucket sum %d != count %d in a quiescent snapshot", bucketSum, s.Count)
	}
	if g.Value() != 0 {
		t.Fatalf("gauge = %d after balanced inc/dec", g.Value())
	}
}

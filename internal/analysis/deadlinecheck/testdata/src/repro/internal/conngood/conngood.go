// Package conngood exercises the deadlinecheck negative cases: the
// IOTimeout idioms from the serving stack, delegation to a helper that
// deadlines its own parameter, and both escape forms.
package conngood

import (
	"bytes"
	"time"

	"repro/internal/conn"
	"repro/internal/wire"
)

// Probe sets a whole-operation deadline up front.
func Probe(addr string, timeout time.Duration) ([]byte, error) {
	c, err := conn.Dial(addr)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	_ = c.SetDeadline(time.Now().Add(timeout))
	buf := make([]byte, 64)
	if _, err := c.Read(buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// Serve uses the conditional per-frame idiom: a deadline refreshed before
// every read when a timeout is configured. The check is source-order, not
// path-sensitive, so the guarded call satisfies it.
func Serve(c *conn.Conn, timeout time.Duration, buf []byte) error {
	for {
		if timeout > 0 {
			_ = c.SetReadDeadline(time.Now().Add(timeout))
		}
		if _, err := wire.ReadFrame(c, buf); err != nil {
			return err
		}
	}
}

// pumpSafe deadlines its own parameter, so it is not I/O-performing and
// its callers owe nothing.
func pumpSafe(c *conn.Conn, buf []byte) error {
	_ = c.SetDeadline(time.Now().Add(time.Second))
	_, err := wire.ReadFrame(c, buf)
	return err
}

// Fetch delegates to the self-deadlining helper.
func Fetch(addr string) ([]byte, error) {
	c, err := conn.Dial(addr)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	buf := make([]byte, 64)
	if err := pumpSafe(c, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// Loopback writes through an in-memory pipe; the line escape sanctions it.
func Loopback(addr string, msg []byte) error {
	c, err := conn.Dial(addr)
	if err != nil {
		return err
	}
	defer c.Close()
	_, err = wire.WriteFrame(c, msg) //cryptolint:nodeadline (in-memory loopback pipe, no peer to stall)
	return err
}

// Drain is a test harness helper; the doc marker sanctions the whole body.
//
//cryptolint:nodeadline (test harness: the harness controls both ends)
func Drain(addr string) error {
	c, err := conn.Dial(addr)
	if err != nil {
		return err
	}
	defer c.Close()
	buf := make([]byte, 64)
	_, err = c.Read(buf)
	return err
}

// Buffered is not connection I/O at all: bytes.Buffer has Write but no
// deadline methods.
func Buffered(msg []byte) (int, error) {
	var b bytes.Buffer
	return b.Write(msg)
}

package pairing

import (
	"bytes"
	"crypto/rand"
	"testing"

	"repro/internal/curve"
)

// randPoint returns a uniformly random non-infinity point of the order-q
// subgroup.
func randPoint(t testing.TB, pp *Params) *curve.Point {
	t.Helper()
	for {
		k, err := rand.Int(rand.Reader, pp.Q())
		if err != nil {
			t.Fatal(err)
		}
		if k.Sign() == 0 {
			continue
		}
		return pp.GeneratorMul(k)
	}
}

func TestFixedPairMatchesPairAndOracle(t *testing.T) {
	pp := toyParams(t)
	for trial := 0; trial < 8; trial++ {
		P := randPoint(t, pp)
		fp, err := pp.NewFixedPair(P)
		if err != nil {
			t.Fatalf("NewFixedPair: %v", err)
		}
		for i := 0; i < 8; i++ {
			Q := randPoint(t, pp)
			got, err := fp.Pair(Q)
			if err != nil {
				t.Fatalf("FixedPair.Pair: %v", err)
			}
			want := mustPair(t, pp, P, Q)
			if !bytes.Equal(got.Bytes(), want.Bytes()) {
				t.Fatalf("trial %d/%d: FixedPair(%v) ≠ Pair", trial, i, Q)
			}
			oracle, err := pp.PairFull(P, Q)
			if err != nil {
				t.Fatalf("PairFull oracle: %v", err)
			}
			if !bytes.Equal(got.Bytes(), oracle.Bytes()) {
				t.Fatalf("trial %d/%d: FixedPair diverges from affine oracle", trial, i)
			}
		}
	}
}

func TestFixedPairInfinitySecondArgument(t *testing.T) {
	pp := toyParams(t)
	fp, err := pp.NewFixedPair(pp.Generator())
	if err != nil {
		t.Fatal(err)
	}
	g, err := fp.Pair(pp.Curve().Infinity())
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsOne() {
		t.Fatal("ê(P, O) ≠ 1")
	}
}

func TestNewFixedPairRejectsBadArguments(t *testing.T) {
	pp := toyParams(t)
	if _, err := pp.NewFixedPair(nil); err == nil {
		t.Error("nil point accepted")
	}
	if _, err := pp.NewFixedPair(pp.Curve().Infinity()); err == nil {
		t.Error("point at infinity accepted")
	}
	// A curve point outside the order-q subgroup (the cofactor is > 1 for
	// every parameter set).
	outside, err := pp.Curve().RandomPoint(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	for outside.InSubgroup() || outside.IsInfinity() {
		outside, err = pp.Curve().RandomPoint(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, err := pp.NewFixedPair(outside); err == nil {
		t.Error("out-of-subgroup point accepted")
	}
}

func TestFixedPairLines(t *testing.T) {
	pp := toyParams(t)
	fp, err := pp.NewFixedPair(pp.Generator())
	if err != nil {
		t.Fatal(err)
	}
	// One tangent line per doubling plus one chord per set bit of q, minus
	// at most a couple of degenerate steps: the count must be within the
	// Miller-loop envelope.
	n := pp.Q().BitLen()
	if got := fp.Lines(); got < n-2 || got > 2*n {
		t.Fatalf("recorded %d lines for a %d-bit order", got, n)
	}
}

func TestPairWithGeneratorMatchesPair(t *testing.T) {
	pp := toyParams(t)
	for i := 0; i < 16; i++ {
		Q := randPoint(t, pp)
		got, err := pp.PairWithGenerator(Q)
		if err != nil {
			t.Fatalf("PairWithGenerator: %v", err)
		}
		want := mustPair(t, pp, pp.Generator(), Q)
		if !bytes.Equal(got.Bytes(), want.Bytes()) {
			t.Fatalf("iteration %d: PairWithGenerator ≠ Pair(Generator(), ·)", i)
		}
	}
}

func TestMultiPairMatchesProductOfPairs(t *testing.T) {
	pp := toyParams(t)
	for _, n := range []int{1, 2, 3, 5, 8} {
		ps := make([]*curve.Point, n)
		qs := make([]*curve.Point, n)
		want := pp.One()
		for i := range ps {
			ps[i] = randPoint(t, pp)
			qs[i] = randPoint(t, pp)
			want = want.Mul(mustPair(t, pp, ps[i], qs[i]))
		}
		got, err := pp.MultiPair(ps, qs)
		if err != nil {
			t.Fatalf("MultiPair(%d): %v", n, err)
		}
		if !bytes.Equal(got.Bytes(), want.Bytes()) {
			t.Fatalf("MultiPair(%d) ≠ ∏ Pair", n)
		}

		// Same check against the affine oracle.
		oracle := pp.One()
		for i := range ps {
			g, err := pp.PairFull(ps[i], qs[i])
			if err != nil {
				t.Fatal(err)
			}
			oracle = oracle.Mul(g)
		}
		if !bytes.Equal(got.Bytes(), oracle.Bytes()) {
			t.Fatalf("MultiPair(%d) diverges from affine oracle product", n)
		}
	}
}

func TestMultiPairEdgeCases(t *testing.T) {
	pp := toyParams(t)
	P := randPoint(t, pp)
	Q := randPoint(t, pp)
	O := pp.Curve().Infinity()

	empty, err := pp.MultiPair(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !empty.IsOne() {
		t.Error("empty product ≠ 1")
	}

	// Pairs containing infinity contribute the identity.
	got, err := pp.MultiPair([]*curve.Point{P, O, P}, []*curve.Point{Q, Q, O})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(mustPair(t, pp, P, Q)) {
		t.Error("infinity pairs must contribute the identity")
	}

	if _, err := pp.MultiPair([]*curve.Point{P}, nil); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := pp.MultiPair([]*curve.Point{nil}, []*curve.Point{Q}); err == nil {
		t.Error("nil point accepted")
	}
}

// TestMultiPairProductCheck exercises the product-equation shape the BLS
// verifier uses: ê(P, S)·ê(−R, h) = 1 iff S = x·h for R = x·P.
func TestMultiPairProductCheck(t *testing.T) {
	pp := toyParams(t)
	x, err := rand.Int(rand.Reader, pp.Q())
	if err != nil {
		t.Fatal(err)
	}
	R := pp.GeneratorMul(x)
	h := randPoint(t, pp)
	S := h.ScalarMul(x)

	got, err := pp.MultiPair(
		[]*curve.Point{pp.Generator(), R.Neg()},
		[]*curve.Point{S, h},
	)
	if err != nil {
		t.Fatal(err)
	}
	if !got.IsOne() {
		t.Fatal("valid product check rejected")
	}

	bad, err := pp.MultiPair(
		[]*curve.Point{pp.Generator(), R.Neg()},
		[]*curve.Point{S.Add(pp.Generator()), h},
	)
	if err != nil {
		t.Fatal(err)
	}
	if bad.IsOne() {
		t.Fatal("forged product check accepted")
	}
}

func benchParams(b *testing.B) *Params {
	b.Helper()
	pp, err := Paper()
	if err != nil {
		b.Fatal(err)
	}
	return pp
}

func BenchmarkPair(b *testing.B) {
	pp := benchParams(b)
	P := randPoint(b, pp)
	Q := randPoint(b, pp)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pp.Pair(P, Q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFixedPair measures the amortized per-pairing cost after the
// one-time precomputation (the warm-up the acceptance criterion refers to).
func BenchmarkFixedPair(b *testing.B) {
	pp := benchParams(b)
	P := randPoint(b, pp)
	Q := randPoint(b, pp)
	fp, err := pp.NewFixedPair(P)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fp.Pair(Q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFixedPairPrecompute(b *testing.B) {
	pp := benchParams(b)
	P := randPoint(b, pp)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pp.NewFixedPair(P); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMultiPair2(b *testing.B) {
	pp := benchParams(b)
	ps := []*curve.Point{randPoint(b, pp), randPoint(b, pp)}
	qs := []*curve.Point{randPoint(b, pp), randPoint(b, pp)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pp.MultiPair(ps, qs); err != nil {
			b.Fatal(err)
		}
	}
}

// Package cmpbad exercises the secretcompare positive cases.
package cmpbad

import (
	"bytes"
	"reflect"

	"repro/internal/keys"
)

// SameKey compares secret exponent pointers with ==.
func SameKey(a, b *keys.PrivateKey) bool {
	return a.D == b.D // want `secret-bearing value compared with ==; use crypto/subtle`
}

// Changed compares with !=.
func Changed(a, b *keys.PrivateKey) bool {
	return a.D != b.D // want `secret-bearing value compared with !=; use crypto/subtle`
}

// MatchMaterial short-circuits over key bytes.
func MatchMaterial(k *keys.PrivateKey, probe []byte) bool {
	return bytes.Equal(k.Bytes, probe) // want `secret-bearing value passed to bytes.Equal; use crypto/subtle`
}

// DeepMatch reflects over the whole secret.
func DeepMatch(a, b *keys.PrivateKey) bool {
	return reflect.DeepEqual(a, b) // want `secret-bearing value passed to reflect.DeepEqual; use crypto/subtle`
}

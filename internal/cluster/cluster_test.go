package cluster

import (
	"bytes"
	"crypto/rand"
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/bf"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/pairing"
)

const (
	msgLen = 32
	tt     = 3
	nn     = 5
	ident  = "cluster@example.com"
)

// deployment spins up a full (t, n) cluster on loopback listeners.
type deployment struct {
	params  *core.ThresholdParams
	players []*PlayerServer
	addrs   []string
}

func deploy(t *testing.T) *deployment {
	t.Helper()
	pp, err := pairing.Toy()
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := core.SetupThreshold(rand.Reader, pp, msgLen, tt, nn)
	if err != nil {
		t.Fatal(err)
	}
	params := pkg.Params()
	d := &deployment{params: params, addrs: make([]string, nn)}
	for i := 1; i <= nn; i++ {
		srv, err := NewPlayerServer(params, i)
		if err != nil {
			t.Fatal(err)
		}
		ks, err := pkg.ExtractShare(ident, i)
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.Install(ks); err != nil {
			t.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go func() { _ = srv.Serve(ln) }()
		d.players = append(d.players, srv)
		d.addrs[i-1] = ln.Addr().String()
	}
	t.Cleanup(func() {
		for _, p := range d.players {
			_ = p.Close()
		}
	})
	return d
}

func (d *deployment) recombiner(t *testing.T) *Recombiner {
	t.Helper()
	r, err := NewRecombiner(d.params, d.addrs, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestClusterDecryption(t *testing.T) {
	d := deploy(t)
	r := d.recombiner(t)
	msg := bytes.Repeat([]byte{0xCA}, msgLen)
	c, err := d.params.Public.EncryptBasic(rand.Reader, ident, msg)
	if err != nil {
		t.Fatal(err)
	}
	got, rejected, err := r.Decrypt(ident, c)
	if err != nil {
		t.Fatal(err)
	}
	if len(rejected) != 0 {
		t.Fatalf("rejected = %v with all players honest", rejected)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("decrypted %x, want %x", got, msg)
	}
}

func TestClusterToleratesByzantinePlayer(t *testing.T) {
	d := deploy(t)
	// Player 2 returns corrupted shares (proof left stale).
	d.players[1].SetMisbehaviour(func(ds *core.DecryptionShare) *core.DecryptionShare {
		return &core.DecryptionShare{Index: ds.Index, G: ds.G.Mul(ds.G), Proof: ds.Proof}
	})
	r := d.recombiner(t)
	msg := bytes.Repeat([]byte{0x11}, msgLen)
	c, _ := d.params.Public.EncryptBasic(rand.Reader, ident, msg)
	got, rejected, err := r.Decrypt(ident, c)
	if err != nil {
		t.Fatal(err)
	}
	if len(rejected) != 1 || rejected[0] != 2 {
		t.Fatalf("rejected = %v, want [2]", rejected)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("byzantine-tolerant decryption failed")
	}
}

func TestClusterToleratesCrashedPlayers(t *testing.T) {
	d := deploy(t)
	// Crash two players: 5 − 2 = 3 = t still suffices.
	_ = d.players[0].Close()
	_ = d.players[4].Close()
	r := d.recombiner(t)
	msg := bytes.Repeat([]byte{0x22}, msgLen)
	c, _ := d.params.Public.EncryptBasic(rand.Reader, ident, msg)
	got, rejected, err := r.Decrypt(ident, c)
	if err != nil {
		t.Fatal(err)
	}
	if len(rejected) != 2 {
		t.Fatalf("rejected = %v, want two crashed players", rejected)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("decryption with crashed players failed")
	}
}

func TestClusterFailsBelowThreshold(t *testing.T) {
	d := deploy(t)
	// Crash three of five: only 2 < t = 3 remain.
	for _, i := range []int{0, 1, 2} {
		_ = d.players[i].Close()
	}
	r := d.recombiner(t)
	msg := bytes.Repeat([]byte{0x33}, msgLen)
	c, _ := d.params.Public.EncryptBasic(rand.Reader, ident, msg)
	if _, _, err := r.Decrypt(ident, c); !errors.Is(err, ErrNotEnoughShares) {
		t.Fatalf("sub-threshold cluster decrypted: %v", err)
	}
}

func TestClusterUnknownIdentity(t *testing.T) {
	d := deploy(t)
	r := d.recombiner(t)
	msg := bytes.Repeat([]byte{0x44}, msgLen)
	c, _ := d.params.Public.EncryptBasic(rand.Reader, "ghost@example.com", msg)
	if _, _, err := r.Decrypt("ghost@example.com", c); !errors.Is(err, ErrNotEnoughShares) {
		t.Fatalf("unknown identity decrypted: %v", err)
	}
}

func TestPlayerInstallValidation(t *testing.T) {
	d := deploy(t)
	pp, _ := pairing.Toy()
	otherPKG, err := core.SetupThreshold(rand.Reader, pp, msgLen, tt, nn)
	if err != nil {
		t.Fatal(err)
	}
	// Share from a different system fails the pairing check.
	foreign, _ := otherPKG.ExtractShare(ident, 1)
	if err := d.players[0].Install(foreign); err == nil {
		t.Error("foreign key share accepted")
	}
	// Share for the wrong player index.
	own, _ := otherPKG.ExtractShare(ident, 2)
	if err := d.players[0].Install(own); err == nil {
		t.Error("misindexed key share accepted")
	}
	// Server constructor validation.
	if _, err := NewPlayerServer(d.params, 0); err == nil {
		t.Error("player index 0 accepted")
	}
	if _, err := NewPlayerServer(d.params, nn+1); err == nil {
		t.Error("player index n+1 accepted")
	}
}

func TestRecombinerValidation(t *testing.T) {
	d := deploy(t)
	if _, err := NewRecombiner(d.params, d.addrs[:2], time.Second); err == nil {
		t.Error("address/player count mismatch accepted")
	}
}

func TestClusterRejectsMalformedPoint(t *testing.T) {
	d := deploy(t)
	conn, err := net.Dial("tcp", d.addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := writeFrameForTest(conn, &request{Op: "share", ID: ident, U: []byte{1, 2}}); err != nil {
		t.Fatal(err)
	}
	var resp response
	if _, err := readFrameForTest(conn, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.OK {
		t.Fatal("malformed point accepted")
	}
}

func TestClusterPing(t *testing.T) {
	d := deploy(t)
	conn, err := net.Dial("tcp", d.addrs[2])
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := writeFrameForTest(conn, &request{Op: "ping"}); err != nil {
		t.Fatal(err)
	}
	var resp response
	if _, err := readFrameForTest(conn, &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.OK || resp.Index != 3 {
		t.Fatalf("ping response = %+v", resp)
	}
	// Unknown op is rejected.
	if _, err := writeFrameForTest(conn, &request{Op: "nonsense"}); err != nil {
		t.Fatal(err)
	}
	if _, err := readFrameForTest(conn, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.OK {
		t.Fatal("unknown op accepted")
	}
}

// Test-only frame helpers delegating to the shared wire package.
func writeFrameForTest(conn net.Conn, v any) (int, error) { return wireWrite(conn, v) }
func readFrameForTest(conn net.Conn, v any) (int, error)  { return wireRead(conn, v) }

// TestRecombinerMetrics drives an instrumented decryption past a byzantine
// player and checks the exported series: per-player fetch timings, the
// verification-failure and rejected-share counters, and quorum wait.
func TestRecombinerMetrics(t *testing.T) {
	d := deploy(t)
	d.players[1].SetMisbehaviour(func(ds *core.DecryptionShare) *core.DecryptionShare {
		return &core.DecryptionShare{Index: ds.Index, G: ds.G.Mul(ds.G), Proof: ds.Proof}
	})
	r := d.recombiner(t)
	reg := obs.NewRegistry()
	r.Instrument(reg)

	msg := bytes.Repeat([]byte{0x33}, msgLen)
	c, _ := d.params.Public.EncryptBasic(rand.Reader, ident, msg)
	if _, _, err := r.Decrypt(ident, c); err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`cluster_decrypts_total 1`,
		`cluster_verify_failures_total 1`,
		`cluster_rejected_shares_total 1`,
		`cluster_quorum_wait_seconds_count 1`,
		`cluster_fetch_seconds_count{player="1"} 1`,
		`cluster_fetch_seconds_count{player="2"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("recombiner metrics missing %q:\n%s", want, out)
		}
	}
}

// encryptBatch produces k distinct ciphertexts for ident.
func encryptBatch(t *testing.T, d *deployment, k int) ([][]byte, []*bf.BasicCiphertext) {
	t.Helper()
	msgs := make([][]byte, k)
	cs := make([]*bf.BasicCiphertext, k)
	for i := 0; i < k; i++ {
		msgs[i] = bytes.Repeat([]byte{byte(0x50 + i)}, msgLen)
		c, err := d.params.Public.EncryptBasic(rand.Reader, ident, msgs[i])
		if err != nil {
			t.Fatal(err)
		}
		cs[i] = c
	}
	return msgs, cs
}

func TestClusterBatchDecryption(t *testing.T) {
	d := deploy(t)
	r := d.recombiner(t)
	msgs, cs := encryptBatch(t, d, 4)
	got, rejected, err := r.DecryptBatch(ident, cs)
	if err != nil {
		t.Fatal(err)
	}
	if len(rejected) != 0 {
		t.Fatalf("rejected = %v with all players honest", rejected)
	}
	for i := range msgs {
		if !bytes.Equal(got[i], msgs[i]) {
			t.Fatalf("ciphertext %d: decrypted %x, want %x", i, got[i], msgs[i])
		}
	}
	// The empty batch is a no-op.
	if got, rejected, err := r.DecryptBatch(ident, nil); got != nil || rejected != nil || err != nil {
		t.Fatalf("empty batch: %v %v %v", got, rejected, err)
	}
}

func TestClusterBatchToleratesByzantinePlayer(t *testing.T) {
	d := deploy(t)
	// Player 3 corrupts every share in the batch.
	d.players[2].SetMisbehaviour(func(ds *core.DecryptionShare) *core.DecryptionShare {
		return &core.DecryptionShare{Index: ds.Index, G: ds.G.Mul(ds.G), Proof: ds.Proof}
	})
	r := d.recombiner(t)
	msgs, cs := encryptBatch(t, d, 3)
	got, rejected, err := r.DecryptBatch(ident, cs)
	if err != nil {
		t.Fatal(err)
	}
	if len(rejected) != 1 || rejected[0] != 3 {
		t.Fatalf("rejected = %v, want [3]", rejected)
	}
	for i := range msgs {
		if !bytes.Equal(got[i], msgs[i]) {
			t.Fatalf("byzantine-tolerant batch decryption failed at %d", i)
		}
	}
}

func TestClusterBatchFailsBelowThreshold(t *testing.T) {
	d := deploy(t)
	for _, i := range []int{0, 1, 2} {
		_ = d.players[i].Close()
	}
	r := d.recombiner(t)
	_, cs := encryptBatch(t, d, 2)
	if _, _, err := r.DecryptBatch(ident, cs); !errors.Is(err, ErrNotEnoughShares) {
		t.Fatalf("sub-threshold batch decrypted: %v", err)
	}
}

// TestClusterSharesOpPartialMalformed drives the raw batched op: one
// malformed ciphertext point fails only its own slot.
func TestClusterSharesOpPartialMalformed(t *testing.T) {
	d := deploy(t)
	msgs, cs := encryptBatch(t, d, 2)
	_ = msgs
	conn, err := net.Dial("tcp", d.addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	us := [][]byte{cs[0].U.Marshal(), {1, 2}, cs[1].U.Marshal()}
	if _, err := writeFrameForTest(conn, &request{Op: "shares", ID: ident, Us: us}); err != nil {
		t.Fatal(err)
	}
	var resp response
	if _, err := readFrameForTest(conn, &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.OK || len(resp.Shares) != 3 {
		t.Fatalf("shares response = %+v", resp)
	}
	if !resp.Shares[0].OK || !resp.Shares[2].OK {
		t.Fatal("valid slots failed")
	}
	if resp.Shares[1].OK || !strings.Contains(resp.Shares[1].Error, "bad ciphertext point") {
		t.Fatalf("malformed slot = %+v", resp.Shares[1])
	}
}

// TestRecombinerConnPool checks the pooled-connection path: the first
// decryption dials every player, the second rides the cached connections,
// and a cache full of dead sockets is absorbed by the stale-retry replay
// without the caller seeing an error.
func TestRecombinerConnPool(t *testing.T) {
	d := deploy(t)
	r := d.recombiner(t)
	defer func() { _ = r.Close() }()
	reg := obs.NewRegistry()
	r.Instrument(reg)

	msg := bytes.Repeat([]byte{0xD0}, msgLen)
	c, err := d.params.Public.EncryptBasic(rand.Reader, ident, msg)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 2; round++ {
		got, rejected, err := r.Decrypt(ident, c)
		if err != nil || len(rejected) != 0 {
			t.Fatalf("round %d: rejected=%v err=%v", round, rejected, err)
		}
		if !bytes.Equal(got, msg) {
			t.Fatalf("round %d: decrypted %x, want %x", round, got, msg)
		}
	}
	if dials := r.met.poolDials.Value(); dials != nn {
		t.Fatalf("dials = %d, want %d (second round must reuse)", dials, nn)
	}
	if reuses := r.met.poolReuses.Value(); reuses != nn {
		t.Fatalf("reuses = %d, want %d", reuses, nn)
	}

	// Poison the cache: close every pooled socket out from under the
	// recombiner, as a player's idle timeout would. The next decryption must
	// detect the stale connections and replay on fresh dials.
	r.pool.mu.Lock()
	for _, conns := range r.pool.idle {
		for _, pc := range conns {
			_ = pc.Close()
		}
	}
	r.pool.mu.Unlock()
	got, rejected, err := r.Decrypt(ident, c)
	if err != nil || len(rejected) != 0 {
		t.Fatalf("post-poison decrypt: rejected=%v err=%v", rejected, err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("post-poison decrypted %x, want %x", got, msg)
	}
	if retries := r.met.poolRetry.Value(); retries != nn {
		t.Fatalf("stale retries = %d, want %d", retries, nn)
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"cluster_pool_dials_total", "cluster_pool_reuses_total", "cluster_pool_stale_retries_total", "cluster_pool_idle"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// Close drains the cache; decryption still works by dialing fresh.
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if n := r.pool.size(); n != 0 {
		t.Fatalf("idle conns after Close = %d", n)
	}
	if _, _, err := r.Decrypt(ident, c); err != nil {
		t.Fatalf("decrypt after Close: %v", err)
	}
}

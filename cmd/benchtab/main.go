// Command benchtab regenerates every table and figure of EXPERIMENTS.md and
// prints them in the paper's terms.
//
// Usage:
//
//	benchtab -exp all            # everything at paper parameters
//	benchtab -exp t3 -quick      # one experiment, reduced iterations
//	benchtab -exp f1             # revocation sweep (simulated clock)
//	benchtab -baseline B.json    # snapshot primitive-op timings
//	benchtab -check B.json       # re-measure and fail on >15% regression
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/pairing"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil { //cryptolint:nodeadline (offline benchmark over local stdio; no untrusted peers)
		fmt.Fprintln(os.Stderr, "benchtab:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("benchtab", flag.ContinueOnError)
	var (
		exp       = fs.String("exp", "all", "experiment: t1,t2,t3,t4,f1,f2,f3,ext or all (comma-separated)")
		params    = fs.String("params", "paper", "pairing parameter set: toy, fast or paper")
		quick     = fs.Bool("quick", false, "reduced iterations/sweeps for a fast pass")
		baseline  = fs.String("baseline", "", "write a primitive-op baseline snapshot (JSON) to this file ('-' for stdout) and exit")
		check     = fs.String("check", "", "re-measure the primitives and exit non-zero if any entry regressed vs this committed snapshot")
		tolerance = fs.Float64("tolerance", 15, "allowed per-entry slowdown (percent) for -check")
		filter    = fs.String("filter", "", "regexp restricting which entries -baseline writes and -check compares")
		serving   = fs.Bool("serving", false, "also measure the serving-layer transport entries (sem.token.*, cluster.token.*; -check infers this from the snapshot)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var filterRe *regexp.Regexp
	if *filter != "" {
		var err error
		if filterRe, err = regexp.Compile(*filter); err != nil {
			return fmt.Errorf("-filter: %w", err)
		}
	}
	pp, err := pairing.ByName(*params)
	if err != nil {
		return err
	}
	if *check != "" {
		return runCheck(pp, *check, *tolerance, *quick, *serving, filterRe, out)
	}
	if *baseline != "" {
		iters, dur := 10, 200*time.Millisecond
		if *quick {
			iters, dur = 3, 20*time.Millisecond
		}
		report, err := bench.Baseline(pp, iters, dur)
		if err != nil {
			return fmt.Errorf("baseline: %w", err)
		}
		if *serving {
			extra, err := bench.ServingEntries(servingWindow(*quick))
			if err != nil {
				return fmt.Errorf("baseline: %w", err)
			}
			report.Entries = append(report.Entries, extra...)
		}
		filterEntries(report, filterRe)
		if len(report.Entries) == 0 {
			return fmt.Errorf("baseline: -filter %q matched no entries", *filter)
		}
		body, err := report.JSON()
		if err != nil {
			return err
		}
		if *baseline == "-" {
			_, err = out.Write(body)
			return err
		}
		return os.WriteFile(*baseline, body, 0o644)
	}
	return runExperiments(pp, *params, *exp, *quick, out)
}

// servingWindow is the per-entry measurement window for the serving-layer
// transports (they need longer windows than primitive ops: each sample is
// a full networked round trip at 32-way concurrency).
func servingWindow(quick bool) time.Duration {
	if quick {
		return 150 * time.Millisecond
	}
	return 1 * time.Second
}

// filterEntries drops report entries not matching re (nil keeps all).
func filterEntries(report *bench.BaselineReport, re *regexp.Regexp) {
	if re == nil {
		return
	}
	kept := report.Entries[:0]
	for _, e := range report.Entries {
		if re.MatchString(e.Name) {
			kept = append(kept, e)
		}
	}
	report.Entries = kept
}

// servingPrefixed reports whether any entry belongs to the serving-layer
// transport set (the ".c32" closed-loop entries), which -check must then
// re-measure. The plain sem.token.single/batch64 microbenches are part of
// the ordinary primitive baseline and do not trigger a fleet spin-up.
func servingPrefixed(entries []bench.BaselineEntry) bool {
	for _, e := range entries {
		if !strings.HasSuffix(e.Name, ".c32") {
			continue
		}
		if strings.HasPrefix(e.Name, "sem.token.") || strings.HasPrefix(e.Name, "cluster.token.") {
			return true
		}
	}
	return false
}

// runCheck re-measures the primitive baseline and compares it against a
// committed snapshot; a regression beyond the tolerance is a hard error so
// CI fails the build. -quick trades statistical weight for speed (use a
// generous tolerance with it: short timings are noisy). A -filter regexp
// restricts the comparison to matching snapshot entries, letting one
// snapshot file gate microbenches and serving-layer entries separately;
// serving-layer entries in the (filtered) snapshot are re-measured
// automatically.
func runCheck(pp *pairing.Params, path string, tolerance float64, quick, serving bool, filterRe *regexp.Regexp, out io.Writer) error {
	body, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("check: %w", err)
	}
	var ref bench.BaselineReport
	if err := json.Unmarshal(body, &ref); err != nil {
		return fmt.Errorf("check: parse %s: %w", path, err)
	}
	filterEntries(&ref, filterRe)
	if len(ref.Entries) == 0 {
		return fmt.Errorf("check: -filter matched no entries of %s", path)
	}
	iters, dur := 10, 200*time.Millisecond
	if quick {
		iters, dur = 3, 20*time.Millisecond
	}
	fresh, err := bench.Baseline(pp, iters, dur)
	if err != nil {
		return fmt.Errorf("check: %w", err)
	}
	if serving || servingPrefixed(ref.Entries) {
		extra, err := bench.ServingEntries(servingWindow(quick))
		if err != nil {
			return fmt.Errorf("check: %w", err)
		}
		fresh.Entries = append(fresh.Entries, extra...)
	}
	regs, err := bench.CompareBaselines(&ref, fresh, tolerance)
	if err != nil {
		return fmt.Errorf("check: %w", err)
	}
	if len(regs) == 0 {
		fmt.Fprintf(out, "benchtab check: all entries within %.0f%% of %s\n", tolerance, path)
		return nil
	}
	for _, r := range regs {
		fmt.Fprintln(out, "REGRESSION", r)
	}
	return fmt.Errorf("check: %d entries regressed more than %.0f%% vs %s", len(regs), tolerance, path)
}

func runExperiments(pp *pairing.Params, params, exp string, quick bool, out io.Writer) error {
	selected := map[string]bool{}
	for _, e := range strings.Split(exp, ",") {
		selected[strings.TrimSpace(strings.ToLower(e))] = true
	}
	all := selected["all"]
	want := func(id string) bool { return all || selected[id] }

	var w *bench.World
	var err error
	needWorld := want("t2") || want("t3") || want("t4") || want("f3")
	if needWorld {
		rsaBits := 1024
		if quick {
			rsaBits = 512
		}
		w, err = bench.NewWorld(bench.WorldConfig{
			Pairing:     pp,
			RSABits:     rsaBits,
			StartServer: want("t2") || want("f3"),
		})
		if err != nil {
			return err
		}
		defer func() { _ = w.Close() }()
	}

	if want("t1") {
		tbl, err := bench.Sizes(bench.SizesConfig{Pairing: pp})
		if err != nil {
			return fmt.Errorf("t1: %w", err)
		}
		if err := tbl.Fprint(out); err != nil {
			return err
		}
	}
	if want("t2") {
		tbl, err := bench.Communication(w)
		if err != nil {
			return fmt.Errorf("t2: %w", err)
		}
		if err := tbl.Fprint(out); err != nil {
			return err
		}
	}
	if want("t3") {
		iters, dur := 20, 200*time.Millisecond
		if quick {
			iters, dur = 3, 20*time.Millisecond
		}
		tbl, err := bench.TimeOps(w, iters, dur)
		if err != nil {
			return fmt.Errorf("t3: %w", err)
		}
		if err := tbl.Fprint(out); err != nil {
			return err
		}
	}
	if want("t4") {
		outcomes, err := bench.Attacks(w)
		if err != nil {
			return fmt.Errorf("t4: %w", err)
		}
		if err := bench.AttackTable(outcomes).Fprint(out); err != nil {
			return err
		}
	}
	if want("f1") {
		cfg := bench.DefaultRevocationConfig()
		if quick {
			cfg.Populations = []int{100}
			cfg.Revocations = 5
		}
		tbl, err := bench.Revocation(cfg)
		if err != nil {
			return fmt.Errorf("f1: %w", err)
		}
		if err := tbl.Fprint(out); err != nil {
			return err
		}
	}
	if want("f2") {
		cfg := bench.DefaultThresholdConfig()
		if quick {
			cfg.Thresholds = []int{1, 2, 3}
			cfg.Iters = 1
		}
		// F2 runs at the "fast" set by default so the sweep stays tractable;
		// -params toy/fast overrides.
		if params != "paper" {
			cfg.Pairing = pp
		} else {
			fast, err := pairing.Fast()
			if err != nil {
				return err
			}
			cfg.Pairing = fast
		}
		cells, err := bench.Threshold(cfg)
		if err != nil {
			return fmt.Errorf("f2: %w", err)
		}
		if err := bench.ThresholdTable(cells, cfg.Pairing).Fprint(out); err != nil {
			return err
		}
	}
	if want("ext") {
		cfg := bench.ExtensionsConfig{}
		if quick {
			cfg.GMBits = 256
			cfg.RabinBits = 512
			cfg.Iters = 1
			cfg.Pairing = pp
		}
		tbl, err := bench.Extensions(cfg)
		if err != nil {
			return fmt.Errorf("ext: %w", err)
		}
		if err := tbl.Fprint(out); err != nil {
			return err
		}
	}
	if want("f3") {
		cfg := bench.DefaultThroughputConfig()
		if quick {
			cfg.Clients = []int{1, 4}
			cfg.Duration = 200 * time.Millisecond
		}
		tbl, err := bench.Throughput(w, cfg)
		if err != nil {
			return fmt.Errorf("f3: %w", err)
		}
		if err := tbl.Fprint(out); err != nil {
			return err
		}
	}
	return nil
}

package keyfile

import (
	"crypto/rand"
	"fmt"
	"io"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/mrsa"
	"repro/internal/pairing"
)

// Deployment is an in-progress enrollment session: cmd/pkgen creates one,
// enrolls identities, and writes the resulting artifact set. The PKG state
// (master keys) lives only for the lifetime of this object — matching the
// paper's deployment where the PKG goes offline after key issuance.
type Deployment struct {
	sys   *System
	store *SEMStore
	users map[string]*User

	rng    io.Reader
	ibePKG *core.MediatedPKG
	gdhTA  *core.GDHAuthority
	rsaPKG *mrsa.IBPKG
}

// DeploymentConfig configures NewDeployment.
type DeploymentConfig struct {
	ParamSet string // "toy", "fast", "paper"
	MsgLen   int    // default 32
	// RSABits enables the IB-mRSA baseline: 0 = disabled, 512/1024 use the
	// embedded fixed moduli, other sizes generate fresh safe primes (slow).
	RSABits int
	Rand    io.Reader // default crypto/rand
}

// NewDeployment initializes the PKGs.
func NewDeployment(cfg DeploymentConfig) (*Deployment, error) {
	if cfg.ParamSet == "" {
		cfg.ParamSet = "paper"
	}
	if cfg.MsgLen == 0 {
		cfg.MsgLen = 32
	}
	if cfg.Rand == nil {
		cfg.Rand = rand.Reader
	}
	pp, err := pairing.ByName(cfg.ParamSet)
	if err != nil {
		return nil, err
	}
	ibePKG, err := core.NewMediatedPKG(cfg.Rand, pp, cfg.MsgLen)
	if err != nil {
		return nil, err
	}
	d := &Deployment{
		sys: &System{
			ParamSet: cfg.ParamSet,
			MsgLen:   cfg.MsgLen,
			PPub:     ibePKG.Public().PPub.Marshal(),
			GDHKeys:  map[string][]byte{},
		},
		store:  &SEMStore{IBE: map[string][]byte{}, GDH: map[string][]byte{}, RSA: map[string][]byte{}},
		users:  map[string]*User{},
		rng:    cfg.Rand,
		ibePKG: ibePKG,
		gdhTA:  core.NewGDHAuthority(pp),
	}
	switch cfg.RSABits {
	case 0:
		// baseline disabled
	case 512:
		if d.rsaPKG, err = mrsa.FixedTestPKG(); err != nil {
			return nil, err
		}
	case 1024:
		if d.rsaPKG, err = mrsa.FixedPaperPKG(); err != nil {
			return nil, err
		}
	default:
		if d.rsaPKG, err = mrsa.NewIBPKG(cfg.Rand, cfg.RSABits); err != nil {
			return nil, err
		}
	}
	if d.rsaPKG != nil {
		d.sys.RSAModulus = d.rsaPKG.Modulus().Bytes() //cryptolint:public (the modulus is public)
	}
	return d, nil
}

// Enroll issues and splits keys for one identity across all configured
// schemes.
func (d *Deployment) Enroll(id string) error {
	if _, ok := d.users[id]; ok {
		return fmt.Errorf("keyfile: identity %q already enrolled", id)
	}
	u := &User{ID: id}

	ibeUser, ibeSEM, err := d.ibePKG.SplitExtract(d.rng, id)
	if err != nil {
		return fmt.Errorf("enroll %q (ibe): %w", id, err)
	}
	u.IBEHalf = ibeUser.D.Marshal()
	d.store.IBE[id] = ibeSEM.D.Marshal()

	gdhUser, gdhSEM, err := d.gdhTA.Keygen(d.rng, id)
	if err != nil {
		return fmt.Errorf("enroll %q (gdh): %w", id, err)
	}
	u.GDHHalf = gdhUser.X.Bytes() //cryptolint:public (sanctioned keyfile serialization edge)
	u.GDHPublic = gdhUser.Public.R.Marshal()
	d.sys.GDHKeys[id] = gdhUser.Public.R.Marshal()
	d.store.GDH[id] = gdhSEM.X.Bytes() //cryptolint:public (sanctioned keyfile serialization edge)

	if d.rsaPKG != nil {
		rsaUser, rsaSEM, err := d.rsaPKG.IssueHalves(d.rng, id)
		if err != nil {
			return fmt.Errorf("enroll %q (rsa): %w", id, err)
		}
		u.RSAHalf = rsaUser.Half.Bytes()      //cryptolint:public (sanctioned keyfile serialization edge)
		d.store.RSA[id] = rsaSEM.Half.Bytes() //cryptolint:public (sanctioned keyfile serialization edge)
	}
	d.users[id] = u
	return nil
}

// System returns the public artifact.
func (d *Deployment) System() *System { return d.sys }

// Store returns the SEM artifact.
func (d *Deployment) Store() *SEMStore { return d.store }

// Users returns the enrolled identities.
func (d *Deployment) Users() []string {
	out := make([]string, 0, len(d.users))
	for id := range d.users {
		out = append(out, id)
	}
	return out
}

// Write lays the deployment out under dir:
//
//	dir/system.json, dir/sem-store.json, dir/users/<id>.json
func (d *Deployment) Write(dir string) error {
	if err := Save(filepath.Join(dir, "system.json"), d.sys, false); err != nil {
		return err
	}
	if err := Save(filepath.Join(dir, "sem-store.json"), d.store, true); err != nil {
		return err
	}
	for id, u := range d.users {
		path := filepath.Join(dir, "users", UserFileName(id))
		if err := Save(path, u, true); err != nil {
			return err
		}
	}
	return nil
}

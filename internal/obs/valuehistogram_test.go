package obs

import (
	"strings"
	"testing"
)

func TestValueHistogramBasics(t *testing.T) {
	reg := NewRegistry()
	h := reg.ValueHistogram("sem_batch_size", "ops per v2 frame")
	for i := 1; i <= 64; i++ {
		h.Observe(i)
	}
	h.Observe(-5) // clamps to 0

	s := h.Snapshot()
	if s.Count != 65 {
		t.Fatalf("count = %d, want 65", s.Count)
	}
	if want := uint64(64 * 65 / 2); s.Sum != want {
		t.Fatalf("sum = %d, want %d", s.Sum, want)
	}
	if m := s.Mean(); m <= 0 || m > 64 {
		t.Fatalf("mean = %v out of range", m)
	}
	// Median of 0,1..64 is 32; the bucket upper bound may overshoot by one
	// sub-bucket (~25% at this magnitude).
	if q := s.Quantile(0.5); q < 32 || q > 48 {
		t.Fatalf("p50 = %d, want within [32,48]", q)
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	// Raw-value rendering: integral le bounds and an integral sum, never
	// the seconds scaling of the latency histogram.
	if !strings.Contains(out, "sem_batch_size_count 65") {
		t.Fatalf("missing count line:\n%s", out)
	}
	if !strings.Contains(out, "sem_batch_size_sum 2080") {
		t.Fatalf("sum not rendered raw:\n%s", out)
	}
	if !strings.Contains(out, `sem_batch_size_bucket{le="+Inf"} 65`) {
		t.Fatalf("missing +Inf bucket:\n%s", out)
	}
	if strings.Contains(out, `le="1.024e-06"`) {
		t.Fatalf("value histogram rendered with seconds bounds:\n%s", out)
	}
}

func TestValueHistogramNilAndZeroAlloc(t *testing.T) {
	var nilH *ValueHistogram
	nilH.Observe(7) // must not panic
	if s := nilH.Snapshot(); s.Count != 0 || s.Quantile(0.99) != 0 || s.Mean() != 0 {
		t.Fatal("nil histogram snapshot not empty")
	}

	h := new(ValueHistogram)
	if n := testing.AllocsPerRun(200, func() { h.Observe(4096) }); n != 0 {
		t.Fatalf("Observe allocates %.1f/op, want 0", n)
	}
}

func TestValueHistogramLabels(t *testing.T) {
	reg := NewRegistry()
	reg.ValueHistogram("sem_frame_bytes", "frame sizes", Label{Key: "dir", Value: "rx"}).Observe(900)
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `sem_frame_bytes_bucket{dir="rx",le="1024"} 1`) {
		t.Fatalf("labelled bucket line missing or mis-rendered:\n%s", out)
	}
	if !strings.Contains(out, `sem_frame_bytes_count{dir="rx"} 1`) {
		t.Fatalf("labelled count line missing:\n%s", out)
	}
}

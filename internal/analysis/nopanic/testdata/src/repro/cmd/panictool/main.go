// Command panictool shows the cmd/ exemption: commands may panic on startup
// misconfiguration.
package main

// Run aborts on bad configuration.
func Run(configured bool) {
	if !configured {
		panic("panictool: not configured")
	}
}

func main() {
	Run(true)
}

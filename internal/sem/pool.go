package sem

import (
	"bytes"
	"errors"
	"fmt"
	"math/big"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/curve"
	"repro/internal/mrsa"
	"repro/internal/obs"
	"repro/internal/pairing"
	"repro/internal/wire"
)

// Pool is the high-throughput replacement for the mutex-serialized Client:
// up to Size multiplexed v2 connections to one SEM address, each pipelining
// many in-flight frames. Concurrent callers never serialize behind one
// round trip — each connection runs a dispatcher that coalesces whatever
// calls are waiting into one batch frame per op (amortizing framing and
// syscalls exactly like an explicit TokenBatch), a FIFO of in-flight frames,
// and a reader that distributes response items back to the callers.
//
// Connections dial lazily, are health-checked by a background ping, and are
// evicted and re-dialed automatically when the peer dies. All methods are
// safe for concurrent use.
type Pool struct {
	addr string
	pp   *pairing.Params
	cfg  PoolConfig
	met  *poolMetrics

	mu      sync.Mutex
	cond    *sync.Cond // signaled when conns or dialing changes
	conns   []*muxConn
	rr      int
	dialing int
	closed  bool

	healthStop chan struct{}
	healthWG   sync.WaitGroup
}

// PoolConfig tunes a Pool. The zero value is usable: 4 connections, 5s
// dial timeout, the Client's default 30s op timeout, 15s health pings.
type PoolConfig struct {
	// Size is the connection cap; ≤ 0 selects DefaultPoolSize.
	Size int
	// DialTimeout covers TCP connect plus the v2 preamble exchange.
	DialTimeout time.Duration
	// OpTimeout bounds the read of each response frame (and each frame
	// write). 0 selects the Client default (30s); negative disables.
	OpTimeout time.Duration
	// HealthInterval is the background ping cadence keeping idle
	// connections alive (SEM servers close idle peers after IOTimeout) and
	// detecting dead ones early. 0 selects 15s; negative disables.
	HealthInterval time.Duration
	// Metrics, when set, registers the sempool_* series.
	Metrics *obs.Registry
}

// Pool defaults.
const (
	DefaultPoolSize       = 4
	defaultDialTimeout    = 5 * time.Second
	defaultHealthInterval = 15 * time.Second
)

// poolMetrics is nil-safe like the ring's: an uninstrumented pool records
// into live, unregistered metrics.
type poolMetrics struct {
	dials      *obs.Counter
	dialErrors *obs.Counter
	evictions  *obs.Counter
	retries    *obs.Counter
	frames     *obs.Counter
	frameItems *obs.Counter
	conns      *obs.Gauge
	inflight   *obs.Gauge
}

func newPoolMetrics(reg *obs.Registry) *poolMetrics {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &poolMetrics{
		dials:      reg.Counter("sempool_dials_total", "pool connection dials"),
		dialErrors: reg.Counter("sempool_dial_errors_total", "pool dial failures"),
		evictions:  reg.Counter("sempool_evictions_total", "pool connections evicted after a transport failure"),
		retries:    reg.Counter("sempool_retries_total", "chunks retried on a fresh connection after a transport failure"),
		frames:     reg.Counter("sempool_frames_total", "request frames sent by the pool"),
		frameItems: reg.Counter("sempool_frame_items_total", "items carried in pool request frames (÷ frames = coalescing factor)"),
		conns:      reg.Gauge("sempool_conns", "live pool connections"),
		inflight:   reg.Gauge("sempool_inflight_frames", "frames awaiting a response across all pool connections"),
	}
}

// NewPool creates a pool for addr. No connection is dialed until the first
// operation. pp may be nil when only RSA/admin ops will be used.
func NewPool(addr string, pp *pairing.Params, cfg PoolConfig) *Pool {
	if cfg.Size <= 0 {
		cfg.Size = DefaultPoolSize
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = defaultDialTimeout
	}
	if cfg.OpTimeout == 0 {
		cfg.OpTimeout = defaultOpTimeout
	}
	if cfg.HealthInterval == 0 {
		cfg.HealthInterval = defaultHealthInterval
	}
	p := &Pool{
		addr:       addr,
		pp:         pp,
		cfg:        cfg,
		met:        newPoolMetrics(cfg.Metrics),
		healthStop: make(chan struct{}),
	}
	p.cond = sync.NewCond(&p.mu)
	if cfg.HealthInterval > 0 {
		p.healthWG.Add(1)
		go p.healthLoop()
	}
	return p
}

// Addr reports the pool's target address.
func (p *Pool) Addr() string { return p.addr }

// Close tears down every connection. In-flight calls fail with
// ErrClientClosed; Close is idempotent.
func (p *Pool) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	conns := p.conns
	p.conns = nil
	p.cond.Broadcast()
	p.mu.Unlock()
	close(p.healthStop)
	for _, mc := range conns {
		mc.fail(ErrClientClosed)
	}
	p.healthWG.Wait()
	return nil
}

// healthLoop pings every live connection each HealthInterval. A failed ping
// makes the connection fail itself (read error → eviction), so the next
// caller dials fresh instead of inheriting a dead socket.
func (p *Pool) healthLoop() {
	defer p.healthWG.Done()
	t := time.NewTicker(p.cfg.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-p.healthStop:
			return
		case <-t.C:
		}
		p.mu.Lock()
		conns := append([]*muxConn(nil), p.conns...)
		p.mu.Unlock()
		for _, mc := range conns {
			// The error path needs no handling here: a transport failure
			// already evicted the connection.
			_, _ = mc.roundTrip(v2OpPing, []wire.ReqItem{{}})
		}
	}
}

// get returns a live connection (round-robin), dialing lazily: the first
// call dials synchronously, and while the pool is below Size each call
// tops it up with one background dial so the pool grows under load without
// putting the dial latency on anyone's critical path. Concurrent callers
// on an empty pool never dial past Size — excess callers wait for an
// in-flight dial instead of opening their own connection (which would
// defeat coalescing and overshoot the cap).
func (p *Pool) get() (*muxConn, error) {
	p.mu.Lock()
	for {
		if p.closed {
			p.mu.Unlock()
			return nil, ErrClientClosed
		}
		if len(p.conns) > 0 {
			mc := p.conns[p.rr%len(p.conns)]
			p.rr++
			grow := len(p.conns)+p.dialing < p.cfg.Size
			if grow {
				p.dialing++
			}
			p.mu.Unlock()
			if grow {
				go func() { _, _ = p.dialConn() }()
			}
			return mc, nil
		}
		if p.dialing == 0 {
			p.dialing++
			p.mu.Unlock()
			return p.dialConn()
		}
		// Someone is dialing; wait for their connection (or their failure)
		// rather than stacking another dial.
		p.cond.Wait()
	}
}

// dialConn dials, negotiates v2 and installs the connection. It owns one
// unit of p.dialing.
func (p *Pool) dialConn() (*muxConn, error) {
	p.met.dials.Inc()
	mc, err := dialMux(p)
	p.mu.Lock()
	p.dialing--
	if err != nil {
		p.cond.Broadcast()
		p.mu.Unlock()
		p.met.dialErrors.Inc()
		return nil, err
	}
	if p.closed {
		p.cond.Broadcast()
		p.mu.Unlock()
		mc.fail(ErrClientClosed)
		return nil, ErrClientClosed
	}
	p.conns = append(p.conns, mc)
	p.met.conns.Set(int64(len(p.conns)))
	p.cond.Broadcast()
	p.mu.Unlock()
	return mc, nil
}

// evict removes a failed connection from the rotation.
func (p *Pool) evict(mc *muxConn) {
	p.mu.Lock()
	for i, c := range p.conns {
		if c == mc { //cryptolint:public (pointer-identity match in the connection rotation; not key material)
			p.conns = append(p.conns[:i], p.conns[i+1:]...)
			p.met.evictions.Inc()
			break
		}
	}
	p.met.conns.Set(int64(len(p.conns)))
	p.cond.Broadcast()
	p.mu.Unlock()
}

// poolCall is one caller's submission to a connection dispatcher: an op
// and its items, answered exactly once on done.
type poolCall struct {
	op    byte
	items []wire.ReqItem
	done  chan poolResult
}

// poolResult carries either the call's response items (data copied out of
// the decoder buffer, safe to retain) or the transport error that voided
// the call.
type poolResult struct {
	items []poolItem
	err   error
}

// poolItem is one response item with pool-owned backing memory.
type poolItem struct {
	status byte
	data   []byte
}

// muxConn is one multiplexed v2 connection: a writer goroutine that
// coalesces submitted calls into batch frames, a FIFO of in-flight frames,
// and a reader goroutine that matches response frames back to their calls
// in order (the server answers frames strictly in request order).
type muxConn struct {
	pool     *Pool
	conn     net.Conn
	maxBatch int
	maxFrame int

	submitCh   chan *poolCall
	inflight   chan []*poolCall
	done       chan struct{} // closed by fail; stops both loops
	writerDone chan struct{}
	failOnce   sync.Once
	err        atomic.Value // error; set before done closes
}

// dialMux dials and negotiates one v2 connection and starts its loops.
func dialMux(p *Pool) (*muxConn, error) {
	conn, err := net.DialTimeout("tcp", p.addr, p.cfg.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("dial SEM pool: %w", err)
	}
	_ = conn.SetDeadline(time.Now().Add(p.cfg.DialTimeout))
	if err := wire.WriteV2Hello(conn, wire.V2Version); err != nil {
		_ = conn.Close()
		return nil, fmt.Errorf("sem pool: v2 hello: %w", err)
	}
	_, maxBatch, maxFrame, err := wire.ReadV2Ack(conn)
	if err != nil {
		_ = conn.Close()
		return nil, fmt.Errorf("sem pool: v2 ack: %w", err)
	}
	_ = conn.SetDeadline(time.Time{})
	mc := &muxConn{
		pool:       p,
		conn:       conn,
		maxBatch:   maxBatch,
		maxFrame:   maxFrame,
		submitCh:   make(chan *poolCall),
		inflight:   make(chan []*poolCall, pipelineDepth),
		done:       make(chan struct{}),
		writerDone: make(chan struct{}),
	}
	go mc.writeLoop()
	go mc.readLoop()
	return mc, nil
}

// fail marks the connection dead exactly once: the cause is recorded, the
// socket closed (waking any blocked read/write), both loops released, and
// the connection evicted from its pool. Calls still in flight are answered
// with the cause by the reader's drain.
func (mc *muxConn) fail(cause error) {
	mc.failOnce.Do(func() {
		mc.err.Store(cause)
		close(mc.done)
		_ = mc.conn.Close()
		mc.pool.evict(mc)
	})
}

// failErr returns the recorded cause (after done is closed).
func (mc *muxConn) failErr() error {
	if v := mc.err.Load(); v != nil {
		return v.(error)
	}
	return ErrClientClosed
}

// roundTrip submits one call and waits for its response items.
func (mc *muxConn) roundTrip(op byte, items []wire.ReqItem) ([]poolItem, error) {
	call := &poolCall{op: op, items: items, done: make(chan poolResult, 1)}
	select {
	case mc.submitCh <- call:
	case <-mc.done:
		return nil, mc.failErr()
	}
	res := <-call.done
	return res.items, res.err
}

// writeLoop coalesces calls into frames. It takes one call, then greedily
// drains whatever same-op calls are already waiting (up to the negotiated
// batch limit) into the same frame — under concurrency many callers' single
// ops ride one frame, which is where the pool's throughput comes from.
func (mc *muxConn) writeLoop() {
	defer close(mc.writerDone)
	var held *poolCall
	var itemScratch []wire.ReqItem
	var enc wire.FrameEncoder
	for {
		var first *poolCall
		if held != nil {
			first, held = held, nil
		} else {
			select {
			case first = <-mc.submitCh:
			case <-mc.done:
				return
			}
		}
		batch := append(make([]*poolCall, 0, 8), first)
		n := len(first.items)
		// Yield once before draining: the sender's rendezvous schedules this
		// goroutine immediately (runnext), before other concurrent callers
		// reach their own send. One yield lets them park so the greedy drain
		// below actually finds them — without it every frame carries exactly
		// one call and coalescing never engages.
		runtime.Gosched()
	coalesce:
		for n < mc.maxBatch {
			select {
			case next := <-mc.submitCh:
				if next.op != first.op || n+len(next.items) > mc.maxBatch {
					held = next
					break coalesce
				}
				batch = append(batch, next)
				n += len(next.items)
			case <-mc.done:
				cause := mc.failErr()
				for _, c := range batch {
					c.done <- poolResult{err: cause}
				}
				if held != nil {
					held.done <- poolResult{err: cause}
				}
				return
			default:
				break coalesce
			}
		}

		itemScratch = itemScratch[:0]
		for _, c := range batch {
			itemScratch = append(itemScratch, c.items...)
		}
		frame, err := enc.EncodeRequest(first.op, itemScratch, mc.maxFrame)
		if err != nil {
			// The combined frame exceeds the negotiated cap — a caller-size
			// problem, not a connection problem. Answer the calls and keep
			// the connection.
			for _, c := range batch {
				c.done <- poolResult{err: fmt.Errorf("sem pool: encode %s: %w", opForV2(first.op), err)}
			}
			continue
		}
		// FIFO record first, then write: the reader must find the record
		// when the response lands.
		select {
		case mc.inflight <- batch:
		case <-mc.done:
			cause := mc.failErr()
			for _, c := range batch {
				c.done <- poolResult{err: cause}
			}
			if held != nil {
				held.done <- poolResult{err: cause}
				held = nil
			}
			return
		}
		mc.pool.met.inflight.Inc()
		mc.pool.met.frames.Inc()
		mc.pool.met.frameItems.Add(uint64(n))
		if mc.pool.cfg.OpTimeout > 0 {
			_ = mc.conn.SetWriteDeadline(time.Now().Add(mc.pool.cfg.OpTimeout))
		}
		if _, err := mc.conn.Write(frame); err != nil {
			// The batch just pushed to inflight is answered by the
			// reader's drain.
			mc.fail(fmt.Errorf("sem pool: write %s: %w", opForV2(first.op), err))
			if held != nil {
				held.done <- poolResult{err: mc.failErr()}
				held = nil
			}
			return
		}
	}
}

// readLoop reads response frames and distributes their items back to the
// calls of the oldest in-flight frame. After a failure (its own read error,
// a writer-side failure, or pool close) it drains the in-flight FIFO,
// answering every stranded call with the recorded cause.
func (mc *muxConn) readLoop() {
	var dec wire.FrameDecoder
	for {
		select {
		case batch := <-mc.inflight:
			mc.pool.met.inflight.Dec()
			if mc.readOne(&dec, batch) {
				continue
			}
			mc.drain()
			return
		case <-mc.done:
			mc.drain()
			return
		}
	}
}

// drain answers every in-flight call with the failure cause. The writer
// has exited (or is exiting) by the time this runs, but a final frame may
// still race in — keep draining until the writer is done AND the FIFO is
// empty.
func (mc *muxConn) drain() {
	cause := mc.failErr()
	for {
		select {
		case batch := <-mc.inflight:
			mc.pool.met.inflight.Dec()
			for _, c := range batch {
				c.done <- poolResult{err: cause}
			}
		case <-mc.writerDone:
			for {
				select {
				case batch := <-mc.inflight:
					mc.pool.met.inflight.Dec()
					for _, c := range batch {
						c.done <- poolResult{err: cause}
					}
				default:
					return
				}
			}
		}
	}
}

// readOne reads one response frame and completes batch. It reports false
// when the connection has failed (the caller then drains).
func (mc *muxConn) readOne(dec *wire.FrameDecoder, batch []*poolCall) bool {
	if mc.pool.cfg.OpTimeout > 0 {
		_ = mc.conn.SetReadDeadline(time.Now().Add(mc.pool.cfg.OpTimeout))
	}
	op, items, _, err := dec.ReadResponse(mc.conn, mc.maxFrame, 0)
	if err != nil {
		mc.fail(fmt.Errorf("sem pool: read response: %w", err))
		cause := mc.failErr()
		for _, c := range batch {
			c.done <- poolResult{err: cause}
		}
		return false
	}
	total := 0
	for _, c := range batch {
		total += len(c.items)
	}
	if op != batch[0].op {
		mc.fail(fmt.Errorf("%w: v2 response op %#x does not match request op %#x", ErrProtocol, op, batch[0].op))
		cause := mc.failErr()
		for _, c := range batch {
			c.done <- poolResult{err: cause}
		}
		return false
	}
	if len(items) != total {
		// A single-item error response to a multi-item frame is the
		// server's frame-level refusal; anything else is a protocol break.
		if total > 1 && len(items) == 1 && items[0].Status != v2StatusOK {
			err := decodeError(responseFromV2(opForV2(op), items[0]))
			for _, c := range batch {
				c.done <- poolResult{err: err}
			}
			return true
		}
		mc.fail(fmt.Errorf("%w: v2 response carries %d items, want %d", ErrProtocol, len(items), total))
		cause := mc.failErr()
		for _, c := range batch {
			c.done <- poolResult{err: cause}
		}
		return false
	}
	off := 0
	for _, c := range batch {
		out := make([]poolItem, len(c.items))
		for i := range out {
			it := items[off+i]
			out[i] = poolItem{status: it.Status, data: bytes.Clone(it.Data)}
		}
		off += len(c.items)
		c.done <- poolResult{items: out}
	}
	return true
}

// batchCall is the Pool's raw transport (the batchCaller contract): chunk
// by the connection's negotiated batch limit, one retry per chunk on a
// fresh connection for transport failures — every SEM op is idempotent, so
// replaying a chunk whose connection died is safe.
func (p *Pool) batchCall(op Op, ids []string, payloads [][]byte) ([][]byte, []error, error) {
	if len(ids) != len(payloads) {
		return nil, nil, fmt.Errorf("sem: batch has %d ids but %d payloads", len(ids), len(payloads))
	}
	results := make([][]byte, len(ids))
	errs := make([]error, len(ids))
	if len(ids) == 0 {
		return results, errs, nil
	}
	opByte := v2ByteFor(op)
	lo := 0
	for lo < len(ids) {
		mc, err := p.get()
		if err != nil {
			for i := lo; i < len(ids); i++ {
				errs[i] = err
			}
			return results, errs, err
		}
		hi := lo + mc.maxBatch
		if hi > len(ids) {
			hi = len(ids)
		}
		items := make([]wire.ReqItem, hi-lo)
		for i := range items {
			items[i] = wire.ReqItem{ID: []byte(ids[lo+i]), Payload: payloads[lo+i]}
		}
		res, err := mc.roundTrip(opByte, items)
		if err != nil && !isRemote(err) && p.retryable(err) {
			p.met.retries.Inc()
			mc2, gerr := p.get()
			if gerr == nil {
				res, err = mc2.roundTrip(opByte, items)
			} else {
				err = gerr
			}
		}
		if err != nil {
			for i := lo; i < len(ids); i++ {
				errs[i] = err
			}
			return results, errs, err
		}
		for i, it := range res {
			if it.status != v2StatusOK {
				errs[lo+i] = decodeError(&Response{OK: false, Code: codeForV2Status(it.status), Error: string(it.data)})
				continue
			}
			results[lo+i] = it.data
		}
		lo = hi
	}
	return results, errs, nil
}

// retryable reports whether a transport failure is worth one replay on a
// fresh connection: not when the pool itself is closed.
func (p *Pool) retryable(err error) bool {
	p.mu.Lock()
	closed := p.closed
	p.mu.Unlock()
	return !closed && err != nil
}

// isRemote reports whether the server answered (failover/retry would only
// repeat the error).
func isRemote(err error) bool { return errors.Is(err, ErrRemote) }

// single runs one op through the pool's coalescing path.
func (p *Pool) single(op Op, id string, payload []byte) ([]byte, error) {
	res, errs, err := p.batchCall(op, []string{id}, [][]byte{payload})
	if err != nil {
		return nil, err
	}
	if errs[0] != nil {
		return nil, errs[0]
	}
	return res[0], nil
}

// Ping checks liveness through the pool.
func (p *Pool) Ping() error {
	_, err := p.single(OpPing, "", nil)
	return err
}

// IBEToken requests ê(U, d_ID,sem) through the pool.
func (p *Pool) IBEToken(id string, u *curve.Point) (*pairing.GT, error) {
	if p.pp == nil {
		return nil, errors.New("sem: pool has no pairing params")
	}
	raw, err := p.single(OpIBEToken, id, u.Marshal())
	if err != nil {
		return nil, err
	}
	return wire.UnmarshalGT(p.pp, raw)
}

// GDHHalfSign requests S_sem = x_sem·h through the pool.
func (p *Pool) GDHHalfSign(id string, h *curve.Point) (*curve.Point, error) {
	if p.pp == nil {
		return nil, errors.New("sem: pool has no pairing params")
	}
	raw, err := p.single(OpGDHSign, id, h.Marshal())
	if err != nil {
		return nil, err
	}
	return wire.UnmarshalG1(p.pp.Curve(), raw)
}

// RSAHalfDecrypt requests c^{d_sem} mod n through the pool.
func (p *Pool) RSAHalfDecrypt(pub *mrsa.PublicKey, id string, ciphertext *big.Int) (*big.Int, error) {
	raw, err := p.single(OpRSADecrypt, id, ciphertext.Bytes()) //cryptolint:public (sanctioned wire serialization edge; the ciphertext is on the wire by design)
	if err != nil {
		return nil, err
	}
	return wire.UnmarshalScalar(raw, pub.N)
}

// Revoke disables an identity on the pool's SEM.
func (p *Pool) Revoke(id, reason string) error {
	_, err := p.single(OpRevoke, id, []byte(reason))
	return err
}

// Unrevoke restores an identity.
func (p *Pool) Unrevoke(id string) error {
	_, err := p.single(OpUnrevoke, id, nil)
	return err
}

// Status reports whether an identity is revoked.
func (p *Pool) Status(id string) (bool, error) {
	raw, err := p.single(OpStatus, id, nil)
	if err != nil {
		return false, err
	}
	return len(raw) == 1 && raw[0] == 1, nil //cryptolint:public (one-byte revocation status straight off the wire)
}

// ListRevoked fetches the SEM's full revocation list through the pool
// (see Client.ListRevoked for the partial-list semantics).
func (p *Pool) ListRevoked() ([]core.RevocationEntry, error) {
	raw, err := p.single(OpList, "", nil)
	if err != nil {
		return nil, err
	}
	return parseRevocationList(raw)
}

// TokenBatch requests k tokens through the pool (see Client.TokenBatch).
func (p *Pool) TokenBatch(ids []string, us []*curve.Point) ([]*pairing.GT, []error, error) {
	return tokenBatch(p, p.pp, ids, us)
}

// GDHHalfSignBatch requests k half-signatures through the pool.
func (p *Pool) GDHHalfSignBatch(ids []string, hs []*curve.Point) ([]*curve.Point, []error, error) {
	return gdhHalfSignBatch(p, p.pp, ids, hs)
}

// RSAHalfDecryptBatch requests k half-decryptions through the pool.
func (p *Pool) RSAHalfDecryptBatch(pub *mrsa.PublicKey, ids []string, cts []*big.Int) ([]*big.Int, []error, error) {
	return rsaHalfDecryptBatch(p, pub, ids, cts)
}

// RegisterIBEBatch bulk-enrolls SEM IBE halves through the pool.
func (p *Pool) RegisterIBEBatch(ids []string, ds []*curve.Point) ([]error, error) {
	return registerIBEBatch(p, ids, ds)
}

// RegisterGDHBatch bulk-enrolls SEM GDH halves through the pool.
func (p *Pool) RegisterGDHBatch(ids []string, xs []*big.Int) ([]error, error) {
	return registerGDHBatch(p, ids, xs)
}

package bls

import (
	"crypto/rand"
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/pairing"
	"repro/internal/shamir"
)

func toyParams(t *testing.T) *pairing.Params {
	t.Helper()
	pp, err := pairing.Toy()
	if err != nil {
		t.Fatal(err)
	}
	return pp
}

func TestSignVerify(t *testing.T) {
	pp := toyParams(t)
	key, err := GenerateKey(rand.Reader, pp)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("the quick brown fox")
	sig, err := key.Sign(msg)
	if err != nil {
		t.Fatal(err)
	}
	if err := key.Public.Verify(msg, sig); err != nil {
		t.Fatalf("valid signature rejected: %v", err)
	}
}

func TestVerifyRejectsWrongMessage(t *testing.T) {
	pp := toyParams(t)
	key, _ := GenerateKey(rand.Reader, pp)
	sig, _ := key.Sign([]byte("msg-a"))
	if err := key.Public.Verify([]byte("msg-b"), sig); !errors.Is(err, ErrInvalidSignature) {
		t.Fatalf("forged message accepted: %v", err)
	}
}

func TestVerifyRejectsWrongKey(t *testing.T) {
	pp := toyParams(t)
	k1, _ := GenerateKey(rand.Reader, pp)
	k2, _ := GenerateKey(rand.Reader, pp)
	msg := []byte("msg")
	sig, _ := k1.Sign(msg)
	if err := k2.Public.Verify(msg, sig); !errors.Is(err, ErrInvalidSignature) {
		t.Fatalf("cross-key signature accepted: %v", err)
	}
}

func TestVerifyRejectsDegenerate(t *testing.T) {
	pp := toyParams(t)
	key, _ := GenerateKey(rand.Reader, pp)
	if err := key.Public.Verify([]byte("m"), pp.Curve().Infinity()); !errors.Is(err, ErrInvalidSignature) {
		t.Fatalf("infinity signature accepted: %v", err)
	}
	if err := key.Public.Verify([]byte("m"), nil); !errors.Is(err, ErrInvalidSignature) {
		t.Fatalf("nil signature accepted: %v", err)
	}
	// A full-group point outside G1 must be rejected before pairing.
	outside, err := pp.Curve().RandomPoint(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	for outside.InSubgroup() {
		outside, _ = pp.Curve().RandomPoint(rand.Reader)
	}
	if err := key.Public.Verify([]byte("m"), outside); !errors.Is(err, ErrInvalidSignature) {
		t.Fatalf("out-of-subgroup signature accepted: %v", err)
	}
}

func TestSignatureDeterministic(t *testing.T) {
	pp := toyParams(t)
	key, _ := GenerateKey(rand.Reader, pp)
	s1, _ := key.Sign([]byte("m"))
	s2, _ := key.Sign([]byte("m"))
	if !s1.Equal(s2) {
		t.Fatal("GDH signatures must be deterministic")
	}
}

func TestSignatureIsCompact(t *testing.T) {
	// The compressed signature is |p|/8 + 1 bytes; at paper parameters that
	// is 65 B and the subgroup position is |q| = 160 bits of entropy — the
	// "short signature" property.
	pp := toyParams(t)
	key, _ := GenerateKey(rand.Reader, pp)
	sig, _ := key.Sign([]byte("m"))
	if got := len(sig.Marshal()); got != 1+pp.Curve().CoordinateSize() {
		t.Fatalf("compressed signature is %d bytes", got)
	}
}

func TestThresholdSigning(t *testing.T) {
	pp := toyParams(t)
	dealer, err := NewThresholdDealer(rand.Reader, pp, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("threshold me")
	partials := make([]shamir.PointShare, 0, 3)
	for i := 2; i <= 4; i++ { // arbitrary t-subset {2,3,4}
		share, err := dealer.PlayerShare(i)
		if err != nil {
			t.Fatal(err)
		}
		partial, err := SignShare(pp, share, msg)
		if err != nil {
			t.Fatal(err)
		}
		vk, err := dealer.VerificationKey(i)
		if err != nil {
			t.Fatal(err)
		}
		if err := VerifyShare(pp, vk, msg, partial); err != nil {
			t.Fatalf("honest share rejected: %v", err)
		}
		partials = append(partials, partial)
	}
	sig, err := Combine(pp, partials, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := dealer.GroupKey().Verify(msg, sig); err != nil {
		t.Fatalf("combined threshold signature invalid: %v", err)
	}
}

func TestThresholdMatchesDirectSignature(t *testing.T) {
	// Determinism means the combined signature must equal the signature the
	// whole key would have produced.
	pp := toyParams(t)
	dealer, _ := NewThresholdDealer(rand.Reader, pp, 2, 3)
	msg := []byte("determinism check")

	var partials []shamir.PointShare
	for i := 1; i <= 2; i++ {
		share, _ := dealer.PlayerShare(i)
		partial, _ := SignShare(pp, share, msg)
		partials = append(partials, partial)
	}
	combined, _ := Combine(pp, partials, 2)

	// Reconstruct x directly and sign.
	s1, _ := dealer.PlayerShare(1)
	s2, _ := dealer.PlayerShare(2)
	x, err := shamir.Reconstruct([]shamir.Share{s1, s2}, 2, pp.Q())
	if err != nil {
		t.Fatal(err)
	}
	whole, err := KeyFromScalar(pp, x)
	if err != nil {
		t.Fatal(err)
	}
	direct, _ := whole.Sign(msg)
	if !combined.Equal(direct) {
		t.Fatal("threshold combination differs from direct signature")
	}
}

func TestCorruptedShareDetected(t *testing.T) {
	pp := toyParams(t)
	dealer, _ := NewThresholdDealer(rand.Reader, pp, 2, 3)
	msg := []byte("byzantine")
	share, _ := dealer.PlayerShare(1)
	partial, _ := SignShare(pp, share, msg)
	// Corrupt the partial signature.
	partial.Value = partial.Value.Double()
	vk, _ := dealer.VerificationKey(1)
	if err := VerifyShare(pp, vk, msg, partial); !errors.Is(err, ErrInvalidShare) {
		t.Fatalf("corrupted share passed verification: %v", err)
	}
}

func TestCorruptedShareBreaksCombination(t *testing.T) {
	pp := toyParams(t)
	dealer, _ := NewThresholdDealer(rand.Reader, pp, 2, 3)
	msg := []byte("bad combine")
	s1, _ := dealer.PlayerShare(1)
	s2, _ := dealer.PlayerShare(2)
	p1, _ := SignShare(pp, s1, msg)
	p2, _ := SignShare(pp, s2, msg)
	p2.Value = p2.Value.Double() // corrupt silently
	sig, err := Combine(pp, []shamir.PointShare{p1, p2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := dealer.GroupKey().Verify(msg, sig); err == nil {
		t.Fatal("signature combined from a corrupted share verified")
	}
}

func TestDealerValidation(t *testing.T) {
	pp := toyParams(t)
	if _, err := NewThresholdDealer(rand.Reader, pp, 0, 3); err == nil {
		t.Error("t=0 accepted")
	}
	if _, err := NewThresholdDealer(rand.Reader, pp, 4, 3); err == nil {
		t.Error("t>n accepted")
	}
	dealer, _ := NewThresholdDealer(rand.Reader, pp, 2, 3)
	if _, err := dealer.PlayerShare(0); err == nil {
		t.Error("player index 0 accepted")
	}
	if _, err := dealer.PlayerShare(4); err == nil {
		t.Error("player index n+1 accepted")
	}
	if _, err := dealer.VerificationKey(9); err == nil {
		t.Error("verification key index out of range accepted")
	}
}

func TestQuickAnyTSubsetCombines(t *testing.T) {
	pp := toyParams(t)
	dealer, _ := NewThresholdDealer(rand.Reader, pp, 3, 6)
	msg := []byte("subsets")
	cfg := &quick.Config{MaxCount: 8}
	property := func(a, b, c uint8) bool {
		// Map to three distinct indices in 1..6.
		idx := map[int]bool{}
		for _, v := range []uint8{a, b, c} {
			idx[1+int(v)%6] = true
		}
		for cand := 1; len(idx) < 3; cand++ {
			idx[cand] = true
		}
		var partials []shamir.PointShare
		for i := range idx {
			share, err := dealer.PlayerShare(i)
			if err != nil {
				return false
			}
			partial, err := SignShare(pp, share, msg)
			if err != nil {
				return false
			}
			partials = append(partials, partial)
		}
		sig, err := Combine(pp, partials, 3)
		if err != nil {
			return false
		}
		return dealer.GroupKey().Verify(msg, sig) == nil
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Fatal(err)
	}
}

// Package bf implements the Boneh-Franklin identity based encryption scheme
// from the Weil/Tate pairing, in both variants the paper builds on:
//
//   - BasicIdent: C = <rP, m ⊕ H2(ê(P_pub, Q_ID)^r)> — IND-ID-CPA only, and
//     deliberately malleable (the threshold scheme of Section 3 is its
//     threshold adaptation; the malleability is demonstrated by the security
//     game tests).
//   - FullIdent: the Fujisaki-Okamoto strengthened variant
//     C = <rP, σ ⊕ H2(g^r), M ⊕ H4(σ)> with r = H3(σ, M) — IND-ID-CCA in
//     the random oracle model. The paper's mediated IBE (Section 4) is the
//     2-out-of-2 split of exactly this scheme, so its decryption path is
//     shared here via OpenWithPairingValue.
//
// Random oracles are instantiated with domain-separated SHA-256:
// H1 hashes identities into G1 (curve.HashToPoint), H2 masks GT elements,
// H3 derives the encryption randomness from (σ, M), H4 masks the message.
package bf

import (
	"bytes"
	"crypto/rand"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/big"
	"sync"

	"repro/internal/curve"
	"repro/internal/lru"
	"repro/internal/obs"
	"repro/internal/pairing"
)

// Domain-separation tags for the scheme's random oracles.
const (
	domainH1 = "BF-IBE-H1"
	domainH2 = "BF-IBE-H2"
	domainH3 = "BF-IBE-H3"
	domainH4 = "BF-IBE-H4"
)

var (
	// ErrInvalidCiphertext is returned by FullIdent decryption when the
	// Fujisaki-Okamoto validity check U = H3(σ, M)·P fails — a mauled or
	// malformed ciphertext.
	ErrInvalidCiphertext = errors.New("bf: invalid ciphertext")

	// ErrWrongIdentity is returned when a private key is used with a
	// ciphertext addressed to a different identity (detectable only through
	// the validity check, so FullIdent surfaces ErrInvalidCiphertext
	// instead; this error is for explicit mismatches).
	ErrWrongIdentity = errors.New("bf: private key identity mismatch")

	// ErrMessageLength is returned when a plaintext does not match the
	// scheme's fixed message length.
	ErrMessageLength = errors.New("bf: plaintext has wrong length")
)

// PublicParams are the system-wide public parameters published by the PKG:
// the pairing groups, the generator P (inside params) and P_pub = s·P.
//
// PublicParams must be used by pointer (every method has a pointer receiver):
// it lazily caches per-recipient fixed-base tables for the GT element
// ê(P_pub, Q_ID), which depends only on the recipient identity, so repeat
// encryptions to the same identity skip both the pairing and the generic
// square-and-multiply exponentiation.
type PublicParams struct {
	Pairing *pairing.Params
	PPub    *curve.Point
	// MsgLen is the fixed plaintext length n in bytes.
	MsgLen int

	gtOnce  sync.Once
	gtCache *lru.Cache[string, *pairing.GTTable]
}

// maxCachedRecipients bounds the per-identity table cache; least recently
// encrypted-to identities are evicted first, so a sender spraying unique
// identities cannot grow memory without bound while a working set of hot
// recipients stays cached.
const maxCachedRecipients = 64

// recipientCache returns the LRU of per-recipient GT tables, building it on
// first use (PublicParams values are assembled by struct literal).
func (pub *PublicParams) recipientCache() *lru.Cache[string, *pairing.GTTable] {
	pub.gtOnce.Do(func() {
		pub.gtCache = lru.New[string, *pairing.GTTable](maxCachedRecipients)
	})
	return pub.gtCache
}

// InstrumentRecipientCache exports the per-recipient GT-table cache's
// counters through reg as the cache="bf_gt_tables" series of the shared
// lru_* families.
func (pub *PublicParams) InstrumentRecipientCache(reg *obs.Registry) {
	pub.recipientCache().Instrument(reg, "bf_gt_tables")
}

// RecipientCacheStats reports the hit/miss/eviction counters of the
// per-recipient GT-table cache.
func (pub *PublicParams) RecipientCacheStats() lru.Stats {
	return pub.recipientCache().Stats()
}

// recipientPairing returns ê(P_pub, Q_ID)^r for the given identity, through
// a cached fixed-base GT table when one is available.
func (pub *PublicParams) recipientPairing(id string, qid *curve.Point, r *big.Int) (*pairing.GT, error) {
	cache := pub.recipientCache()
	if tab, ok := cache.Get(id); ok {
		return tab.Exp(r), nil
	}
	g, err := pub.Pairing.Pair(pub.PPub, qid)
	if err != nil {
		return nil, err
	}
	tab, err := pairing.NewGTTable(g)
	if err != nil {
		// Degenerate pairing value (infinity inputs); exponentiate directly.
		return g.Exp(r)
	}
	cache.Add(id, tab)
	return tab.Exp(r), nil
}

// PrivateKey is an extracted identity key d_ID = s·Q_ID.
//
// A key lazily carries the fixed-argument Miller program for ê(d_ID, ·), so
// every decryption after the first skips all Miller-loop point arithmetic
// (the pairing is symmetric: ê(U, d_ID) = ê(d_ID, U)). Use keys by pointer
// once decryption has run; the cached program makes values non-copyable.
//
//cryptolint:secret
type PrivateKey struct {
	ID string
	D  *curve.Point

	fpOnce sync.Once
	fp     *pairing.FixedPair
}

// pairing returns ê(U, d_ID) through the key's cached fixed-argument
// program, falling back to the generic pairing for degenerate keys (D at
// infinity or off the subgroup — nothing this package produces).
func (k *PrivateKey) pairing(pp *pairing.Params, u *curve.Point) (*pairing.GT, error) {
	k.fpOnce.Do(func() {
		fp, err := pp.NewFixedPair(k.D)
		if err == nil {
			k.fp = fp
		}
	})
	if k.fp != nil {
		return k.fp.Pair(u)
	}
	return pp.Pair(u, k.D)
}

// PKG is the private key generator holding the master key s.
//
//cryptolint:secret
type PKG struct {
	pub    *PublicParams //cryptolint:public (system parameters)
	master *big.Int
}

// Setup runs the PKG setup over the given pairing parameters, choosing a
// random master key s and computing P_pub = s·P.
func Setup(rng io.Reader, pp *pairing.Params, msgLen int) (*PKG, error) {
	if msgLen <= 0 {
		return nil, fmt.Errorf("bf: message length %d must be positive", msgLen)
	}
	s, err := randScalar(rng, pp.Q())
	if err != nil {
		return nil, fmt.Errorf("sample master key: %w", err)
	}
	return SetupWithMaster(pp, s, msgLen)
}

// SetupWithMaster builds a PKG from an explicit master key; the threshold
// dealer and the security-game reductions need this.
//
//cryptolint:vartime (offline PKG setup; the one-time master-key reduction is not an online path)
func SetupWithMaster(pp *pairing.Params, s *big.Int, msgLen int) (*PKG, error) {
	if msgLen <= 0 {
		return nil, fmt.Errorf("bf: message length %d must be positive", msgLen)
	}
	sm := new(big.Int).Mod(s, pp.Q())
	if sm.Sign() == 0 {
		return nil, fmt.Errorf("bf: master key must be nonzero mod q")
	}
	return &PKG{
		pub: &PublicParams{
			Pairing: pp,
			PPub:    pp.GeneratorMul(sm),
			MsgLen:  msgLen,
		},
		master: sm,
	}, nil
}

// Public returns the public system parameters.
func (p *PKG) Public() *PublicParams { return p.pub }

// MasterKey returns a copy of s (needed by the threshold dealer).
func (p *PKG) MasterKey() *big.Int { return new(big.Int).Set(p.master) }

// Extract computes the identity's private key d_ID = s·H1(ID).
func (p *PKG) Extract(id string) (*PrivateKey, error) {
	qid, err := HashIdentity(p.pub.Pairing, id)
	if err != nil {
		return nil, err
	}
	return &PrivateKey{ID: id, D: qid.ScalarMul(p.master)}, nil
}

// HashIdentity is the H1 oracle: identities → G1.
func HashIdentity(pp *pairing.Params, id string) (*curve.Point, error) {
	pt, err := pp.Curve().HashToPoint(domainH1, []byte(id))
	if err != nil {
		return nil, fmt.Errorf("hash identity %q: %w", id, err)
	}
	return pt, nil
}

// BasicCiphertext is a BasicIdent ciphertext <U, V>.
type BasicCiphertext struct {
	U *curve.Point
	V []byte
}

// EncryptBasic encrypts msg (exactly MsgLen bytes) for the identity under
// BasicIdent.
func (pub *PublicParams) EncryptBasic(rng io.Reader, id string, msg []byte) (*BasicCiphertext, error) {
	if len(msg) != pub.MsgLen {
		return nil, fmt.Errorf("%w: got %d, want %d", ErrMessageLength, len(msg), pub.MsgLen)
	}
	qid, err := HashIdentity(pub.Pairing, id)
	if err != nil {
		return nil, err
	}
	r, err := randScalar(rng, pub.Pairing.Q())
	if err != nil {
		return nil, err
	}
	u := pub.Pairing.GeneratorMul(r)
	g, err := pub.recipientPairing(id, qid, r)
	if err != nil {
		return nil, err
	}
	v := xorBytes(msg, MaskGT(g, pub.MsgLen))
	return &BasicCiphertext{U: u, V: v}, nil
}

// DecryptBasic recovers the plaintext with the identity's full private key:
// m = V ⊕ H2(ê(U, d_ID)).
func (pub *PublicParams) DecryptBasic(key *PrivateKey, c *BasicCiphertext) ([]byte, error) {
	if len(c.V) != pub.MsgLen {
		return nil, fmt.Errorf("%w: ciphertext body %d bytes, want %d", ErrMessageLength, len(c.V), pub.MsgLen)
	}
	g, err := key.pairing(pub.Pairing, c.U)
	if err != nil {
		return nil, err
	}
	return xorBytes(c.V, MaskGT(g, pub.MsgLen)), nil
}

// Ciphertext is a FullIdent ciphertext <U, V, W>.
type Ciphertext struct {
	U *curve.Point
	V []byte // σ ⊕ H2(g^r), |V| = MsgLen
	W []byte // M ⊕ H4(σ), |W| = MsgLen
}

// Encrypt encrypts msg for the identity under FullIdent (IND-ID-CCA).
func (pub *PublicParams) Encrypt(rng io.Reader, id string, msg []byte) (*Ciphertext, error) {
	if len(msg) != pub.MsgLen {
		return nil, fmt.Errorf("%w: got %d, want %d", ErrMessageLength, len(msg), pub.MsgLen)
	}
	qid, err := HashIdentity(pub.Pairing, id)
	if err != nil {
		return nil, err
	}
	sigma := make([]byte, pub.MsgLen)
	if _, err := io.ReadFull(orDefaultRand(rng), sigma); err != nil {
		return nil, fmt.Errorf("sample sigma: %w", err)
	}
	r := DeriveR(sigma, msg, pub.Pairing.Q())
	u := pub.Pairing.GeneratorMul(r)
	g, err := pub.recipientPairing(id, qid, r)
	if err != nil {
		return nil, err
	}
	v := xorBytes(sigma, MaskGT(g, pub.MsgLen))
	w := xorBytes(msg, MaskSigma(sigma, pub.MsgLen))
	return &Ciphertext{U: u, V: v, W: w}, nil
}

// Decrypt recovers the plaintext with the identity's full private key,
// performing the Fujisaki-Okamoto validity check.
func (pub *PublicParams) Decrypt(key *PrivateKey, c *Ciphertext) ([]byte, error) {
	g, err := key.pairing(pub.Pairing, c.U)
	if err != nil {
		return nil, err
	}
	return pub.OpenWithPairingValue(g, c)
}

// OpenWithPairingValue completes FullIdent decryption given the pairing
// value g = ê(U, d_ID), however it was assembled. The paper's mediated IBE
// computes g = g_sem · g_user from the SEM token and the user half and then
// runs exactly this step, so the logic lives here once.
func (pub *PublicParams) OpenWithPairingValue(g *pairing.GT, c *Ciphertext) ([]byte, error) {
	if len(c.V) != pub.MsgLen || len(c.W) != pub.MsgLen {
		return nil, fmt.Errorf("%w: component lengths %d/%d, want %d", ErrMessageLength, len(c.V), len(c.W), pub.MsgLen)
	}
	sigma := xorBytes(c.V, MaskGT(g, pub.MsgLen))
	msg := xorBytes(c.W, MaskSigma(sigma, pub.MsgLen))
	r := DeriveR(sigma, msg, pub.Pairing.Q())
	if !pub.Pairing.GeneratorMul(r).Equal(c.U) {
		return nil, ErrInvalidCiphertext
	}
	return msg, nil
}

// MaskGT is the H2 oracle: it expands a GT element into an n-byte mask.
func MaskGT(g *pairing.GT, n int) []byte {
	return expand(domainH2, g.Bytes(), n)
}

// MaskSigma is the H4 oracle: it expands σ into an n-byte mask.
func MaskSigma(sigma []byte, n int) []byte {
	return expand(domainH4, sigma, n)
}

// DeriveR is the H3 oracle: r = H3(σ, M) ∈ [1, q).
//
//cryptolint:vartime (big.Int hash-to-scalar reduction; the digest width hides the value and the bias is negligible)
func DeriveR(sigma, msg []byte, q *big.Int) *big.Int {
	payload := make([]byte, 0, 8+len(sigma)+len(msg))
	var lenPrefix [8]byte
	binary.BigEndian.PutUint64(lenPrefix[:], uint64(len(sigma)))
	payload = append(payload, lenPrefix[:]...)
	payload = append(payload, sigma...)
	payload = append(payload, msg...)
	// Expand to |q| + 128 bits and reduce; the bias is negligible.
	nbytes := (q.BitLen()+7)/8 + 16
	digest := expand(domainH3, payload, nbytes)
	r := new(big.Int).SetBytes(digest)
	qm1 := new(big.Int).Sub(q, big.NewInt(1))
	r.Mod(r, qm1)
	return r.Add(r, big.NewInt(1))
}

// expand is counter-mode SHA-256 expansion with domain separation.
func expand(domain string, seed []byte, n int) []byte {
	out := make([]byte, 0, ((n+31)/32)*32)
	var block uint32
	for len(out) < n {
		h := sha256.New()
		var be [4]byte
		binary.BigEndian.PutUint32(be[:], block)
		h.Write([]byte(domain))
		h.Write(be[:])
		h.Write(seed)
		out = h.Sum(out)
		block++
	}
	return out[:n]
}

func xorBytes(a, b []byte) []byte {
	out := make([]byte, len(a))
	subtle.XORBytes(out, a, b)
	return out
}

//cryptolint:vartime (rejection-free big.Int scalar sampling; rand.Int is variable-time by nature)
func randScalar(rng io.Reader, q *big.Int) (*big.Int, error) {
	r, err := rand.Int(orDefaultRand(rng), new(big.Int).Sub(q, big.NewInt(1)))
	if err != nil {
		return nil, err
	}
	return r.Add(r, big.NewInt(1)), nil
}

func orDefaultRand(rng io.Reader) io.Reader {
	if rng == nil {
		return rand.Reader
	}
	return rng
}

// Marshal serializes a BasicIdent ciphertext as U ‖ V.
func (c *BasicCiphertext) Marshal() []byte {
	u := c.U.Marshal()
	out := make([]byte, 0, len(u)+len(c.V))
	out = append(out, u...)
	out = append(out, c.V...)
	return out
}

// UnmarshalBasicCiphertext parses a BasicIdent ciphertext serialized by
// BasicCiphertext.Marshal.
func (pub *PublicParams) UnmarshalBasicCiphertext(data []byte) (*BasicCiphertext, error) {
	ptLen := 1 + pub.Pairing.Curve().CoordinateSize()
	want := ptLen + pub.MsgLen
	if len(data) != want {
		return nil, fmt.Errorf("bf: basic ciphertext must be %d bytes, got %d", want, len(data))
	}
	u, err := pub.Pairing.Curve().Unmarshal(data[:ptLen])
	if err != nil {
		return nil, fmt.Errorf("bf: basic ciphertext point: %w", err)
	}
	return &BasicCiphertext{U: u, V: bytes.Clone(data[ptLen:])}, nil
}

// Marshal serializes the ciphertext as U ‖ V ‖ W (compressed point plus the
// two fixed-width bodies).
func (c *Ciphertext) Marshal() []byte {
	u := c.U.Marshal()
	out := make([]byte, 0, len(u)+len(c.V)+len(c.W))
	out = append(out, u...)
	out = append(out, c.V...)
	out = append(out, c.W...)
	return out
}

// UnmarshalCiphertext parses a FullIdent ciphertext serialized by Marshal.
func (pub *PublicParams) UnmarshalCiphertext(data []byte) (*Ciphertext, error) {
	ptLen := 1 + pub.Pairing.Curve().CoordinateSize()
	want := ptLen + 2*pub.MsgLen
	if len(data) != want {
		return nil, fmt.Errorf("bf: ciphertext must be %d bytes, got %d", want, len(data))
	}
	u, err := pub.Pairing.Curve().Unmarshal(data[:ptLen])
	if err != nil {
		return nil, fmt.Errorf("bf: ciphertext point: %w", err)
	}
	return &Ciphertext{
		U: u,
		V: bytes.Clone(data[ptLen : ptLen+pub.MsgLen]),
		W: bytes.Clone(data[ptLen+pub.MsgLen:]),
	}, nil
}

// Marshal serializes the private key as the identity length-prefix, the
// identity and the compressed point.
func (k *PrivateKey) Marshal() []byte {
	id := []byte(k.ID)
	pt := k.D.Marshal()
	out := make([]byte, 0, 4+len(id)+len(pt))
	var be [4]byte
	binary.BigEndian.PutUint32(be[:], uint32(len(id)))
	out = append(out, be[:]...)
	out = append(out, id...)
	out = append(out, pt...)
	return out
}

// UnmarshalPrivateKey parses a private key serialized by Marshal.
func (pub *PublicParams) UnmarshalPrivateKey(data []byte) (*PrivateKey, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("bf: private key too short")
	}
	idLen := binary.BigEndian.Uint32(data[:4])
	ptLen := 1 + pub.Pairing.Curve().CoordinateSize()
	if uint64(len(data)) != 4+uint64(idLen)+uint64(ptLen) {
		return nil, fmt.Errorf("bf: private key length mismatch")
	}
	id := string(data[4 : 4+idLen])
	d, err := pub.Pairing.Curve().Unmarshal(data[4+idLen:])
	if err != nil {
		return nil, fmt.Errorf("bf: private key point: %w", err)
	}
	return &PrivateKey{ID: id, D: d}, nil
}

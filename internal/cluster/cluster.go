// Package cluster is the network embedding of the paper's threshold IBE
// (Section 3): each of the n players runs a PlayerServer holding its
// identity-key shares, and a Recombiner fans a ciphertext out to the
// players, verifies the returned decryption shares' robustness proofs, and
// recombines any t acceptable ones — tolerating unreachable and byzantine
// players exactly as the paper's recombiner is meant to.
//
// Wire format: the shared length-prefixed JSON framing of internal/wire.
package cluster

import (
	"errors"
	"fmt"
	"net"
	"strconv"
	"sync"
	"time"

	"repro/internal/bf"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/wire"
)

var (
	// ErrUnknownIdentity is returned when a player holds no key share for
	// the identity.
	ErrUnknownIdentity = errors.New("cluster: unknown identity")

	// ErrNotEnoughShares is returned when fewer than t usable shares could
	// be collected.
	ErrNotEnoughShares = errors.New("cluster: not enough valid shares")
)

// request is one recombiner → player message.
type request struct {
	Op string   `json:"op"` // "share" | "shares" | "ping"
	ID string   `json:"id,omitempty"`
	U  []byte   `json:"u,omitempty"`  // compressed ciphertext point ("share")
	Us [][]byte `json:"us,omitempty"` // batched ciphertext points ("shares")
}

// proofWire serializes a core.ShareProof.
type proofWire struct {
	W1 []byte `json:"w1"`
	W2 []byte `json:"w2"`
	E  []byte `json:"e"`
	V  []byte `json:"v"`
}

// response is one player → recombiner message.
type response struct {
	OK     bool        `json:"ok"`
	Error  string      `json:"error,omitempty"`
	Index  int         `json:"index,omitempty"`
	G      []byte      `json:"g,omitempty"`
	Proof  *proofWire  `json:"proof,omitempty"`
	Shares []shareItem `json:"shares,omitempty"` // batched "shares" results
}

// PlayerServer is one decryption server of the cluster. Safe for
// concurrent use.
type PlayerServer struct {
	params *core.ThresholdParams
	index  int

	keysMu sync.RWMutex
	keys   map[string]*core.KeyShare

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup

	// ioTimeout bounds each frame read (doubling as the per-connection idle
	// limit) and each response write, so a hung or glacial peer cannot pin
	// a handler goroutine forever.
	ioTimeout time.Duration

	// misbehave, when set, corrupts outgoing shares — the test hook for
	// byzantine behaviour.
	misbehave func(*core.DecryptionShare) *core.DecryptionShare

	shareRequests *obs.Counter   // player_share_requests_total
	shareErrors   *obs.Counter   // player_share_errors_total
	shareTime     *obs.Histogram // player_share_seconds
}

// Instrument registers the player's serving metrics with reg: share
// request/error counters and the share service-time histogram (the
// pairing-with-proof computation thresholdd spends its CPU on). Call
// before Serve.
func (p *PlayerServer) Instrument(reg *obs.Registry) {
	l := obs.Label{Key: "player", Value: strconv.Itoa(p.index)}
	p.shareRequests = reg.Counter("player_share_requests_total", "decryption-share requests received", l)
	p.shareErrors = reg.Counter("player_share_errors_total", "share requests answered with an error", l)
	p.shareTime = reg.Histogram("player_share_seconds", "share computation time (incl. proof)", l)
}

// defaultIOTimeout is the per-frame read/write deadline a player server
// applies to every connection.
const defaultIOTimeout = 2 * time.Minute

// NewPlayerServer creates player index's server.
func NewPlayerServer(params *core.ThresholdParams, index int) (*PlayerServer, error) {
	if index < 1 || index > params.N {
		return nil, fmt.Errorf("cluster: player index %d out of 1..%d", index, params.N)
	}
	return &PlayerServer{
		params:    params,
		index:     index,
		keys:      make(map[string]*core.KeyShare),
		conns:     make(map[net.Conn]struct{}),
		ioTimeout: defaultIOTimeout,
	}, nil
}

// Install registers the player's key share for an identity (after
// verifying it, as the paper's Keygen demands).
func (p *PlayerServer) Install(share *core.KeyShare) error {
	if share.Index != p.index {
		return fmt.Errorf("cluster: share for player %d installed on player %d", share.Index, p.index)
	}
	if err := p.params.VerifyKeyShare(share); err != nil {
		return fmt.Errorf("cluster: refusing bad key share: %w", err)
	}
	p.keysMu.Lock()
	defer p.keysMu.Unlock()
	p.keys[share.ID] = share
	return nil
}

// SetMisbehaviour installs a share-corrupting hook (tests only).
func (p *PlayerServer) SetMisbehaviour(f func(*core.DecryptionShare) *core.DecryptionShare) {
	p.misbehave = f
}

// Serve accepts connections until Close.
func (p *PlayerServer) Serve(ln net.Listener) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return errors.New("cluster: player server is closed")
	}
	p.ln = ln
	p.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			p.mu.Lock()
			closed := p.closed
			p.mu.Unlock()
			if closed {
				return nil
			}
			return fmt.Errorf("cluster accept: %w", err)
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			_ = conn.Close()
			return nil
		}
		p.conns[conn] = struct{}{}
		p.wg.Add(1)
		p.mu.Unlock()
		go func() {
			defer p.wg.Done()
			p.handle(conn)
		}()
	}
}

// Addr returns the bound address once serving.
func (p *PlayerServer) Addr() net.Addr {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.ln == nil {
		return nil
	}
	return p.ln.Addr()
}

// Close stops the server and drains handlers.
func (p *PlayerServer) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	ln := p.ln
	for c := range p.conns {
		_ = c.Close()
	}
	p.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	p.wg.Wait()
	return err
}

func (p *PlayerServer) handle(conn net.Conn) {
	defer func() {
		_ = conn.Close()
		p.mu.Lock()
		delete(p.conns, conn)
		p.mu.Unlock()
	}()
	for {
		var req request
		_ = conn.SetReadDeadline(time.Now().Add(p.ioTimeout))
		if _, err := wire.ReadFrame(conn, &req); err != nil {
			return
		}
		resp := p.dispatch(&req)
		_ = conn.SetWriteDeadline(time.Now().Add(p.ioTimeout))
		if _, err := wire.WriteFrame(conn, resp); err != nil {
			return
		}
	}
}

func (p *PlayerServer) dispatch(req *request) *response {
	switch req.Op {
	case "ping":
		return &response{OK: true, Index: p.index}
	case "share":
		p.shareRequests.Inc()
		start := time.Now()
		resp := p.shareResponse(req)
		p.shareTime.Observe(time.Since(start))
		if !resp.OK {
			p.shareErrors.Inc()
		}
		return resp
	case "shares":
		p.shareRequests.Add(uint64(len(req.Us)))
		start := time.Now()
		resp := p.sharesResponse(req)
		p.shareTime.Observe(time.Since(start))
		if !resp.OK {
			p.shareErrors.Inc()
		}
		return resp
	default:
		return &response{OK: false, Error: fmt.Sprintf("unknown op %q", req.Op)}
	}
}

func (p *PlayerServer) shareResponse(req *request) *response {
	p.keysMu.RLock()
	key, ok := p.keys[req.ID]
	p.keysMu.RUnlock()
	if !ok {
		return &response{OK: false, Error: ErrUnknownIdentity.Error()}
	}
	u, err := wire.UnmarshalG1(p.params.Public.Pairing.Curve(), req.U)
	if err != nil {
		return &response{OK: false, Error: "bad ciphertext point: " + err.Error()}
	}
	ds, err := p.params.ComputeShareWithProof(nil, key, u)
	if err != nil {
		return &response{OK: false, Error: err.Error()}
	}
	if p.misbehave != nil {
		ds = p.misbehave(ds)
	}
	return &response{
		OK:    true,
		Index: ds.Index,
		G:     ds.G.Bytes(), //cryptolint:public (sanctioned wire serialization edge; the share goes to the recombiner by design)
		Proof: &proofWire{
			W1: ds.Proof.W1.Bytes(), //cryptolint:public (the NIZK proof is public by construction)
			W2: ds.Proof.W2.Bytes(), //cryptolint:public (the NIZK proof is public by construction)
			E:  ds.Proof.E.Bytes(),  //cryptolint:public (the NIZK proof is public by construction)
			V:  ds.Proof.V.Marshal(),
		},
	}
}

// Recombiner is the designated-player client: it collects, verifies and
// combines decryption shares from the player servers. Connections to
// players persist across decryptions in a small per-player pool, so a
// steady stream of threshold decryptions pays the TCP handshake once per
// player instead of once per operation.
type Recombiner struct {
	params *core.ThresholdParams
	// addrs[i-1] is player i's address ("" = player not deployed).
	addrs   []string
	timeout time.Duration
	met     *recombinerMetrics
	pool    *connPool
}

// connPool caches idle player connections keyed by address. Players close
// idle peers after their IOTimeout, so a cached connection may be stale —
// the round-trip path absorbs that with one fresh-dial retry.
type connPool struct {
	mu      sync.Mutex
	idle    map[string][]net.Conn
	closed  bool
	maxIdle int // per address
}

// maxIdlePerPlayer bounds cached connections per player: one decryption fan
// uses one connection per player, so anything beyond a couple only covers
// concurrent Decrypt callers.
const maxIdlePerPlayer = 2

func newConnPool() *connPool {
	return &connPool{idle: make(map[string][]net.Conn), maxIdle: maxIdlePerPlayer}
}

// get pops an idle connection for addr, or nil when the caller must dial.
func (cp *connPool) get(addr string) net.Conn {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	conns := cp.idle[addr]
	if len(conns) == 0 {
		return nil
	}
	c := conns[len(conns)-1]
	cp.idle[addr] = conns[:len(conns)-1]
	return c
}

// put returns a healthy connection to the pool (closing it instead when the
// pool is full or closed).
func (cp *connPool) put(addr string, c net.Conn) {
	cp.mu.Lock()
	if cp.closed || len(cp.idle[addr]) >= cp.maxIdle {
		cp.mu.Unlock()
		_ = c.Close()
		return
	}
	cp.idle[addr] = append(cp.idle[addr], c)
	cp.mu.Unlock()
}

// size reports the total idle connections (for the cluster_pool_idle gauge).
func (cp *connPool) size() int64 {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	n := 0
	for _, conns := range cp.idle {
		n += len(conns)
	}
	return int64(n)
}

// closeAll closes every idle connection and refuses further caching.
func (cp *connPool) closeAll() {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	cp.closed = true
	for addr, conns := range cp.idle {
		for _, c := range conns {
			_ = c.Close()
		}
		delete(cp.idle, addr)
	}
}

// recombinerMetrics instruments the fan-out path: where a threshold
// decryption actually spends its time (per-shareholder network+verify
// latency, and the quorum wait that bounds the whole operation) and which
// players are feeding the recombiner garbage.
type recombinerMetrics struct {
	fetch      []*obs.Histogram // cluster_fetch_seconds{player=...}, index i-1
	verifyFail *obs.Counter     // cluster_verify_failures_total
	quorumWait *obs.Histogram   // cluster_quorum_wait_seconds
	decrypts   *obs.Counter     // cluster_decrypts_total
	rejected   *obs.Counter     // cluster_rejected_shares_total
	poolDials  *obs.Counter     // cluster_pool_dials_total
	poolReuses *obs.Counter     // cluster_pool_reuses_total
	poolRetry  *obs.Counter     // cluster_pool_stale_retries_total
}

// Instrument registers the recombiner's series with reg: one
// cluster_fetch_seconds histogram per player (fetch + NIZK verify, the
// unit of the overlap the Decrypt pipeline exploits), the NIZK
// verification failure counter, and the quorum wait histogram (time until
// every player resolved — the paper's recombiner cannot finish earlier).
// Call before Decrypt; safe to skip entirely.
func (r *Recombiner) Instrument(reg *obs.Registry) {
	m := &recombinerMetrics{
		fetch:      make([]*obs.Histogram, r.params.N),
		verifyFail: reg.Counter("cluster_verify_failures_total", "decryption shares rejected by the NIZK robustness check"),
		quorumWait: reg.Histogram("cluster_quorum_wait_seconds", "time from fan-out until all player fetches resolved"),
		decrypts:   reg.Counter("cluster_decrypts_total", "threshold decryptions attempted"),
		rejected:   reg.Counter("cluster_rejected_shares_total", "player responses rejected (unreachable, malformed or failing verification)"),
		poolDials:  reg.Counter("cluster_pool_dials_total", "player connections dialed by the recombiner"),
		poolReuses: reg.Counter("cluster_pool_reuses_total", "share fetches served over a pooled player connection"),
		poolRetry:  reg.Counter("cluster_pool_stale_retries_total", "fetches replayed on a fresh dial after a pooled connection went stale"),
	}
	for i := 1; i <= r.params.N; i++ {
		m.fetch[i-1] = reg.Histogram("cluster_fetch_seconds", "per-player share fetch + proof verification time",
			obs.Label{Key: "player", Value: strconv.Itoa(i)})
	}
	reg.GaugeFunc("cluster_pool_idle", "idle pooled player connections", r.pool.size)
	r.met = m
}

// The recording helpers are nil-safe so an uninstrumented recombiner pays
// nothing but the receiver check.

func (m *recombinerMetrics) decryptStarted() {
	if m == nil {
		return
	}
	m.decrypts.Inc()
}

func (m *recombinerMetrics) verifyFailed() {
	if m == nil {
		return
	}
	m.verifyFail.Inc()
}

func (m *recombinerMetrics) observeFetch(player int, d time.Duration) {
	if m == nil {
		return
	}
	m.fetch[player-1].Observe(d)
}

func (m *recombinerMetrics) observeQuorumWait(d time.Duration) {
	if m == nil {
		return
	}
	m.quorumWait.Observe(d)
}

func (m *recombinerMetrics) shareRejected() {
	if m == nil {
		return
	}
	m.rejected.Inc()
}

func (m *recombinerMetrics) pooledDial() {
	if m == nil {
		return
	}
	m.poolDials.Inc()
}

func (m *recombinerMetrics) pooledReuse() {
	if m == nil {
		return
	}
	m.poolReuses.Inc()
}

func (m *recombinerMetrics) pooledStaleRetry() {
	if m == nil {
		return
	}
	m.poolRetry.Inc()
}

// NewRecombiner binds a recombiner to the cluster topology.
func NewRecombiner(params *core.ThresholdParams, addrs []string, timeout time.Duration) (*Recombiner, error) {
	if len(addrs) != params.N {
		return nil, fmt.Errorf("cluster: %d addresses for n=%d players", len(addrs), params.N)
	}
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	return &Recombiner{params: params, addrs: addrs, timeout: timeout, pool: newConnPool()}, nil
}

// Close releases the recombiner's pooled player connections. The
// recombiner stays usable — subsequent decryptions dial fresh.
func (r *Recombiner) Close() error {
	r.pool.closeAll()
	return nil
}

// roundTrip performs one framed request/response exchange with a player
// over a pooled connection. A transport failure on a reused connection is
// indistinguishable from the player having idle-closed it, so the exchange
// is replayed exactly once on a fresh dial; failures on fresh connections
// are real and propagate.
func (r *Recombiner) roundTrip(addr string, req *request, resp *response) error {
	conn := r.pool.get(addr)
	reused := conn != nil
	if reused {
		r.met.pooledReuse()
	} else {
		var err error
		r.met.pooledDial()
		conn, err = net.DialTimeout("tcp", addr, r.timeout)
		if err != nil {
			return err
		}
	}
	err := exchangeFrames(conn, req, resp, r.timeout)
	if err != nil {
		_ = conn.Close()
		if !reused {
			return err
		}
		r.met.pooledStaleRetry()
		r.met.pooledDial()
		conn, err = net.DialTimeout("tcp", addr, r.timeout)
		if err != nil {
			return err
		}
		*resp = response{}
		if err = exchangeFrames(conn, req, resp, r.timeout); err != nil {
			_ = conn.Close()
			return err
		}
	}
	r.pool.put(addr, conn)
	return nil
}

// exchangeFrames writes one request frame and reads one response frame
// under the round-trip deadline.
func exchangeFrames(conn net.Conn, req *request, resp *response, timeout time.Duration) error {
	_ = conn.SetDeadline(time.Now().Add(timeout))
	if _, err := wire.WriteFrame(conn, req); err != nil {
		return err
	}
	_, err := wire.ReadFrame(conn, resp)
	return err
}

// Decrypt fans the ciphertext out to every reachable player, verifies each
// returned share's proof, and recombines t acceptable shares. It returns
// the plaintext together with the indices of players whose responses were
// rejected (unreachable, malformed, or failing the NIZK check).
//
// Proof verification — a multi-pairing per share — runs inside each
// player's fetch goroutine, so the NIZK checks for fast responders overlap
// the network wait for slow ones and each other; the decryption latency is
// dominated by the slowest single fetch+verify chain rather than their sum.
// ThresholdParams' verification-key pairing cache is safe under this
// concurrency.
func (r *Recombiner) Decrypt(id string, c *bf.BasicCiphertext) (msg []byte, rejected []int, err error) {
	type outcome struct {
		index int
		share *core.DecryptionShare
		err   error
	}
	r.met.decryptStarted()
	start := time.Now()
	results := make(chan outcome, r.params.N)
	var wg sync.WaitGroup
	for i := 1; i <= r.params.N; i++ {
		addr := r.addrs[i-1]
		if addr == "" { //cryptolint:public (the player's network address, not key material)
			results <- outcome{index: i, err: errors.New("not deployed")}
			continue
		}
		wg.Add(1)
		go func(i int, addr string) {
			defer wg.Done()
			fetchStart := time.Now()
			share, err := r.fetchShare(addr, id, c)
			if err == nil {
				if err = r.params.VerifyShareProof(id, c.U, share); err != nil {
					r.met.verifyFailed()
				}
			}
			r.met.observeFetch(i, time.Since(fetchStart))
			results <- outcome{index: i, share: share, err: err}
		}(i, addr)
	}
	wg.Wait()
	r.met.observeQuorumWait(time.Since(start))
	close(results)

	valid := make([]*core.DecryptionShare, 0, r.params.N)
	for out := range results {
		if out.err != nil {
			rejected = append(rejected, out.index)
			r.met.shareRejected()
			continue
		}
		valid = append(valid, out.share)
	}
	if len(valid) < r.params.T {
		return nil, rejected, fmt.Errorf("%w: %d of %d", ErrNotEnoughShares, len(valid), r.params.N)
	}
	msg, err = r.params.Recombine(valid[:r.params.T], c)
	return msg, rejected, err
}

// fetchShare performs one share request against a player over a pooled
// connection.
func (r *Recombiner) fetchShare(addr, id string, c *bf.BasicCiphertext) (*core.DecryptionShare, error) {
	var resp response
	if err := r.roundTrip(addr, &request{Op: "share", ID: id, U: c.U.Marshal()}, &resp); err != nil {
		return nil, err
	}
	if !resp.OK {
		return nil, errors.New(resp.Error)
	}
	return r.decodeShare(&resp)
}

func (r *Recombiner) decodeShare(resp *response) (*core.DecryptionShare, error) {
	// Every component of the response comes from a possibly-misbehaving
	// player: GT elements get the order-q membership check, the proof point
	// the subgroup check, and the challenge the F_q range check, before any
	// of them enters verification arithmetic.
	pp := r.params.Public.Pairing
	g, err := wire.UnmarshalGT(pp, resp.G)
	if err != nil {
		return nil, fmt.Errorf("share value: %w", err)
	}
	if resp.Proof == nil {
		return nil, errors.New("cluster: response missing proof")
	}
	w1, err := wire.UnmarshalGT(pp, resp.Proof.W1)
	if err != nil {
		return nil, fmt.Errorf("proof w1: %w", err)
	}
	w2, err := wire.UnmarshalGT(pp, resp.Proof.W2)
	if err != nil {
		return nil, fmt.Errorf("proof w2: %w", err)
	}
	v, err := wire.UnmarshalG1(pp.Curve(), resp.Proof.V)
	if err != nil {
		return nil, fmt.Errorf("proof v: %w", err)
	}
	e, err := wire.UnmarshalScalar(resp.Proof.E, pp.Q())
	if err != nil {
		return nil, fmt.Errorf("proof e: %w", err)
	}
	return &core.DecryptionShare{
		Index: resp.Index,
		G:     g,
		Proof: &core.ShareProof{
			W1: w1,
			W2: w2,
			E:  e,
			V:  v,
		},
	}, nil
}

// wireWrite and wireRead expose the framing to the package's tests.
func wireWrite(conn net.Conn, v any) (int, error) { return wire.WriteFrame(conn, v) }
func wireRead(conn net.Conn, v any) (int, error)  { return wire.ReadFrame(conn, v) }

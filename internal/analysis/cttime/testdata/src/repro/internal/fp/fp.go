// Package fp stubs the limb field API for fixture use.
package fp

// Element is a stub limb vector.
type Element [4]uint64

// Field is a stub field context.
type Field struct{}

// Inv is the constant-time inversion.
func (f *Field) Inv(z, x *Element) *Element { return z }

// InvVarTime is the variable-time inversion; cttime forbids tainted input.
func (f *Field) InvVarTime(z, x *Element) *Element { return z }

package core

import (
	"crypto/rand"
	"testing"

	"repro/internal/bf"
	"repro/internal/pairing"
)

// T5 — security-game sanity checks. A statistical game harness cannot prove
// a theorem, but it can check that the games measure the right boundary:
// rule-abiding adversaries hover at coin-flip advantage while adversaries
// that violate the corruption bound win every round.

const gameTrials = 40

func TestT5TCPABoundedAdversaryNearCoinflip(t *testing.T) {
	pp, err := pairing.Toy()
	if err != nil {
		t.Fatal(err)
	}
	adv := &BoundedTCPAAdversary{ID: "target@example.com", MsgLen: msgLen}
	wins := 0
	for i := 0; i < gameTrials; i++ {
		won, err := RunTCPAGame(rand.Reader, pp, msgLen, 3, 5, adv)
		if err != nil {
			t.Fatal(err)
		}
		if won {
			wins++
		}
	}
	// P(wins ≤ 6 or ≥ 34 | p=0.5, n=40) < 10⁻⁵.
	if wins <= 6 || wins >= 34 {
		t.Fatalf("bounded adversary won %d/%d — advantage where none should exist", wins, gameTrials)
	}
}

func TestT5TCPACheatingAdversaryAlwaysWins(t *testing.T) {
	pp, _ := pairing.Toy()
	adv := &CheatingTCPAAdversary{ID: "target@example.com", MsgLen: msgLen}
	for i := 0; i < 8; i++ {
		won, err := RunTCPAGame(rand.Reader, pp, msgLen, 3, 5, adv)
		if err != nil {
			t.Fatal(err)
		}
		if !won {
			t.Fatalf("adversary with t shares lost round %d — threshold boundary is wrong", i)
		}
	}
}

func TestT5WCCABoundedAdversaryNearCoinflip(t *testing.T) {
	pp, _ := pairing.Toy()
	adv := &BoundedWCCAAdversary{ID: "target@example.com", MsgLen: msgLen}
	wins := 0
	for i := 0; i < gameTrials; i++ {
		won, err := RunWCCAGame(rand.Reader, pp, msgLen, adv)
		if err != nil {
			t.Fatal(err)
		}
		if won {
			wins++
		}
	}
	if wins <= 6 || wins >= 34 {
		t.Fatalf("bounded wCCA adversary won %d/%d", wins, gameTrials)
	}
}

func TestT5WCCACheatingAdversaryAlwaysWins(t *testing.T) {
	pp, _ := pairing.Toy()
	for i := 0; i < 8; i++ {
		adv := &CheatingWCCAAdversary{ID: "target@example.com", MsgLen: msgLen}
		won, err := RunWCCAGame(rand.Reader, pp, msgLen, adv)
		if err != nil {
			t.Fatal(err)
		}
		if !won {
			t.Fatalf("adversary with the user half lost round %d", i)
		}
	}
}

func TestWCCAOracleForbidsChallengeUserKey(t *testing.T) {
	pp, _ := pairing.Toy()
	oracles, err := newMediatedOracles(rand.Reader, pp, msgLen)
	if err != nil {
		t.Fatal(err)
	}
	oracles.forbidden = "target@x"
	if _, err := oracles.UserKey("target@x"); err == nil {
		t.Fatal("challenge user key extraction allowed")
	}
	if _, err := oracles.UserKey("someone-else@x"); err != nil {
		t.Fatalf("other user key extraction failed: %v", err)
	}
	if _, err := oracles.SEMKey("target@x"); err != nil {
		t.Fatalf("SEM key extraction (allowed by the game) failed: %v", err)
	}
}

func TestWCCADecryptOracle(t *testing.T) {
	pp, _ := pairing.Toy()
	oracles, err := newMediatedOracles(rand.Reader, pp, msgLen)
	if err != nil {
		t.Fatal(err)
	}
	msg := make([]byte, msgLen)
	msg[0] = 0x77
	c, err := oracles.Public.Encrypt(rand.Reader, "dec@example.com", msg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := oracles.Decrypt("dec@example.com", c)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0x77 {
		t.Fatal("decryption oracle wrong")
	}
}

func TestGameRejectsBadPlaintextLength(t *testing.T) {
	pp, _ := pairing.Toy()
	adv := &badLenAdversary{}
	if _, err := RunWCCAGame(rand.Reader, pp, msgLen, adv); err == nil {
		t.Fatal("mismatched plaintext lengths accepted")
	}
}

type badLenAdversary struct{}

func (a *badLenAdversary) ChooseChallenge(_ *MediatedOracles) (string, []byte, []byte, error) {
	return "x@x", []byte{1}, []byte{2}, nil
}

func (a *badLenAdversary) Guess(_ *MediatedOracles, _ string, _ *bf.Ciphertext) (int, error) {
	return 0, nil
}

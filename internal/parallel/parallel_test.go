package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestFanCoversEveryIndexOnce(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 7, 64, 1000} {
		seen := make([]atomic.Int32, n)
		Fan(n, func(i int) { seen[i].Add(1) })
		for i := range seen {
			if got := seen[i].Load(); got != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, got)
			}
		}
	}
}

func TestFanChunksPartition(t *testing.T) {
	const n = 97
	seen := make([]atomic.Int32, n)
	FanChunks(n, func(lo, hi int) {
		if lo < 0 || hi > n || lo > hi {
			t.Errorf("bad chunk [%d, %d)", lo, hi)
		}
		for i := lo; i < hi; i++ {
			seen[i].Add(1)
		}
	})
	for i := range seen {
		if got := seen[i].Load(); got != 1 {
			t.Fatalf("index %d visited %d times", i, got)
		}
	}
}

func TestWorkersBounds(t *testing.T) {
	if w := Workers(0); w != 1 {
		t.Errorf("Workers(0) = %d, want 1", w)
	}
	if w := Workers(1); w != 1 {
		t.Errorf("Workers(1) = %d, want 1", w)
	}
	max := runtime.GOMAXPROCS(0)
	if w := Workers(1 << 20); w != max {
		t.Errorf("Workers(big) = %d, want GOMAXPROCS = %d", w, max)
	}
}

func TestFanMultiWorkerCoverage(t *testing.T) {
	// Force the goroutine path even on single-core hosts and check the
	// partition still covers every index exactly once.
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	for _, n := range []int{4, 5, 97, 256} {
		seen := make([]atomic.Int32, n)
		Fan(n, func(i int) { seen[i].Add(1) })
		for i := range seen {
			if got := seen[i].Load(); got != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, got)
			}
		}
	}
}

func TestStatsAdvance(t *testing.T) {
	before := Stats()
	Fan(10, func(int) {})
	after := Stats()
	if after.Fans != before.Fans+1 {
		t.Errorf("fan count: %d -> %d", before.Fans, after.Fans)
	}
	if after.Tasks != before.Tasks+10 {
		t.Errorf("task count: %d -> %d", before.Tasks, after.Tasks)
	}
	if after.Workers <= before.Workers {
		t.Errorf("worker count did not advance: %d -> %d", before.Workers, after.Workers)
	}
}

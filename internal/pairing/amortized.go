// Amortized pairing engine: the Jacobian Miller-loop step machinery shared
// by Pair, MultiPair and FixedPair.
//
// Every Miller-loop variant in this package walks the same addition chain —
// the binary expansion of the group order q — and differs only in what it
// does with the line function of each step. The line through the running
// point V (and its tangent, for doublings) evaluated at the distorted point
// φ(Q) = (−x_Q, i·y_Q) always has the shape
//
//	l(φQ) = (a + b·x_Q) + (c·y_Q)·i,   a, b, c ∈ F_p,
//
// where (a, b, c) depend only on V and P — not on Q. millerVars computes
// these generic coefficients while advancing V with the inversion-free
// Jacobian formulas of millerJacobian (see pairing.go for their derivation);
// each step's overall F_p* scale is arbitrary because the final
// exponentiation (p²−1)/q annihilates F_p*.
//
// Three consumers:
//
//   - Pair feeds (a, b, c) straight into the accumulator (pairing.go);
//   - MultiPair runs n walks in lock-step sharing one accumulator squaring
//     per iteration and a single final exponentiation;
//   - FixedPair runs the walk once at construction, normalizes each line by
//     1/c (another F_p* scale) to the two-coefficient form
//     (α·x_Q + β) + y_Q·i, and replays the recorded program against any
//     second argument with no point arithmetic at all.
package pairing

import (
	"fmt"
	"math/big"

	"repro/internal/curve"
	"repro/internal/fp"
	"repro/internal/gf"
	"repro/internal/parallel"
)

// toMont converts a canonical affine coordinate (a residue in [0, p)) into
// a freshly allocated Montgomery limb vector. Curve points only ever hold
// canonical residues; the reduction branch is defensive.
func toMont(F *fp.Field, v *big.Int) []uint64 {
	z := F.NewElt()
	if err := F.FromBig(z, v); err != nil {
		_ = F.FromBig(z, new(big.Int).Mod(v, F.P()))
	}
	return z
}

// millerVars is the running state of one Miller-loop traversal: the affine
// base P, the running point V in Jacobian coordinates, and scratch storage
// reused across steps. All coordinates are Montgomery limb vectors — the
// entire walk runs on internal/fp with no big.Int arithmetic and no heap
// allocation per step.
type millerVars struct {
	F       *fp.Field //cryptolint:public (field parameters)
	xP, yP  []uint64  // affine base point P
	X, Y, Z []uint64  // running point V (Jacobian)
	one     []uint64  // 1 in Montgomery form

	t1, t2, t3, t4, t5, t6 []uint64
}

func newMillerVars(F *fp.Field, pt *curve.Point) *millerVars {
	mv := &millerVars{
		F:   F,
		xP:  toMont(F, pt.X()),
		yP:  toMont(F, pt.Y()),
		Z:   F.NewElt(),
		one: F.NewElt(),
		t1:  F.NewElt(), t2: F.NewElt(), t3: F.NewElt(),
		t4: F.NewElt(), t5: F.NewElt(), t6: F.NewElt(),
	}
	mv.X = append([]uint64(nil), mv.xP...)
	mv.Y = append([]uint64(nil), mv.yP...)
	F.SetOne(mv.Z)
	F.SetOne(mv.one)
	return mv
}

// doubleStep advances V ← 2V and writes the tangent-line coefficients into
// (a, b, c). It reports whether a line was produced — vertical tangents
// (2-torsion, unreachable from the odd-order subgroup) and V = O contribute
// only an F_p* factor and emit nothing.
//
// Derivation (V = (X, Y, Z), M = 3X² + Z⁴, Z₃ = 2YZ, tangent scaled by
// 2YZ³): l = [M·X − 2Y² + M·Z²·x_Q] + [Z₃·Z²·y_Q]·i, so
// a = M·X − 2Y², b = M·Z², c = Z₃·Z².
//
//cryptolint:hotpath
func (m *millerVars) doubleStep(a, b, c []uint64) bool {
	F := m.F
	if F.IsZero(m.Z) {
		return false
	}
	if F.IsZero(m.Y) {
		// 2-torsion: vertical tangent, 2V = O.
		F.SetZero(m.Z)
		return false
	}
	xx := m.t1
	F.Square(xx, m.X)
	yy := m.t2
	F.Square(yy, m.Y)
	zz := m.t3
	F.Square(zz, m.Z)
	s := m.t4 // S = 4XY²
	F.Mul(s, m.X, yy)
	F.Double(s, s)
	F.Double(s, s)
	mm := m.t5 // M = 3X² + Z⁴
	F.Square(mm, zz)
	F.Add(mm, mm, xx)
	F.Add(mm, mm, xx)
	F.Add(mm, mm, xx)

	// a = M·X − 2Y², b = M·Z² (X still the pre-doubling coordinate).
	F.Mul(a, mm, m.X)
	F.Sub(a, a, yy)
	F.Sub(a, a, yy)
	F.Mul(b, mm, zz)

	// Z₃ = 2YZ (before Y is clobbered), then c = Z₃·Z².
	F.Mul(m.Z, m.Y, m.Z)
	F.Double(m.Z, m.Z)
	F.Mul(c, m.Z, zz)

	// X₃ = M² − 2S, Y₃ = M·(S − X₃) − 8Y⁴.
	F.Square(m.X, mm)
	F.Sub(m.X, m.X, s)
	F.Sub(m.X, m.X, s)
	yyyy := m.t6
	F.Square(yyyy, yy)
	F.Double(yyyy, yyyy)
	F.Double(yyyy, yyyy)
	F.Double(yyyy, yyyy)
	F.Sub(m.Y, s, m.X)
	F.Mul(m.Y, m.Y, mm)
	F.Sub(m.Y, m.Y, yyyy)
	return true
}

// addStep advances V ← V + P and writes the chord-line coefficients into
// (a, b, c), reporting whether a line was produced. V = O restarts the walk
// at P; V = −P yields the vertical chord (skipped, V becomes O); V = P
// degenerates to a tangent doubling. Only the last case and the generic
// chord emit a line.
//
// Generic chord (H = x_P·Z² − X, R = y_P·Z³ − Y, Z₃ = ZH, chord scaled by
// Z₃): l = [R·x_P − Z₃·y_P + R·x_Q] + [Z₃·y_Q]·i, so a = R·x_P − Z₃·y_P,
// b = R, c = Z₃.
//
//cryptolint:hotpath
func (m *millerVars) addStep(a, b, c []uint64) bool {
	F := m.F
	if F.IsZero(m.Z) {
		// V = O: the "line" through O and P is the vertical at P, an F_p*
		// factor — restart at P.
		F.Set(m.X, m.xP)
		F.Set(m.Y, m.yP)
		F.SetOne(m.Z)
		return false
	}
	zz := m.t1
	F.Square(zz, m.Z)
	u2 := m.t2
	F.Mul(u2, m.xP, zz)
	s2 := m.t3
	F.Mul(s2, m.yP, zz)
	F.Mul(s2, s2, m.Z)
	h := u2 // H = x_P·Z² − X
	F.Sub(h, u2, m.X)
	r := s2 // R = y_P·Z³ − Y
	F.Sub(r, s2, m.Y)

	switch {
	case F.IsZero(h) && F.IsZero(r):
		// V = P: the chord degenerates to the tangent at P, so this addition
		// is a doubling from the affine representative (x_P, y_P), where
		// M = 3x_P² + 1 and the line scale is Z₃ = 2y_P. (Unreachable for
		// odd-order P — the running multiplier never revisits 1 — kept so the
		// walk matches the affine oracle on arbitrary curve points.)
		yy := m.t4
		F.Square(yy, m.yP)
		mm := m.t5
		F.Square(mm, m.xP)
		F.Set(m.t6, mm)
		F.Double(mm, mm)
		F.Add(mm, mm, m.t6)
		F.Add(mm, mm, m.one) // M = 3x_P² + 1 (Z = 1)
		F.Mul(a, mm, m.xP)
		F.Sub(a, a, yy)
		F.Sub(a, a, yy)
		F.Set(b, mm)
		F.Double(m.Z, m.yP) // Z₃ = 2y_P
		F.Set(c, m.Z)
		s := m.t6 // S = 4·x_P·y_P²
		F.Mul(s, m.xP, yy)
		F.Double(s, s)
		F.Double(s, s)
		F.Square(m.X, mm)
		F.Sub(m.X, m.X, s)
		F.Sub(m.X, m.X, s)
		yyyy := yy
		F.Square(yyyy, yy)
		F.Double(yyyy, yyyy)
		F.Double(yyyy, yyyy)
		F.Double(yyyy, yyyy)
		F.Sub(m.Y, s, m.X)
		F.Mul(m.Y, m.Y, mm)
		F.Sub(m.Y, m.Y, yyyy)
		return true
	case F.IsZero(h):
		// V = −P: vertical line, an F_p* factor — V + P = O.
		F.SetZero(m.Z)
		return false
	default:
		hh := m.t4
		F.Square(hh, h)
		hhh := m.t5
		F.Mul(hhh, hh, h)
		xh2 := m.t6
		F.Mul(xh2, m.X, hh)

		F.Mul(m.Z, m.Z, h) // Z₃ = Z·H

		F.Mul(a, r, m.xP)
		F.Mul(b, m.Z, m.yP) // scratch use of b for Z₃·y_P
		F.Sub(a, a, b)
		F.Set(b, r)
		F.Set(c, m.Z)

		F.Square(m.X, r)
		F.Sub(m.X, m.X, hhh)
		F.Sub(m.X, m.X, xh2)
		F.Sub(m.X, m.X, xh2)
		F.Sub(xh2, xh2, m.X)
		F.Mul(xh2, xh2, r)
		F.Mul(hhh, hhh, m.Y)
		F.Sub(m.Y, xh2, hhh)
		return true
	}
}

// MultiPair computes the pairing product ∏ᵢ ê(Pᵢ, Qᵢ) with one shared
// Miller loop and a single final exponentiation. The accumulator squaring —
// one per loop iteration regardless of n — and the final exponentiation are
// shared across all pairs, so n-pair products cost far less than n calls to
// Pair; product-form checks (BLS verification, batched share proofs) are the
// intended callers. Pairs with an infinity member contribute the identity,
// exactly as in Pair; an empty product is the identity. The shared squaring
// is sound because ∏fᵢ² = (∏fᵢ)²: the per-pair Miller accumulators can be
// folded into one before squaring.
func (pp *Params) MultiPair(ps, qs []*curve.Point) (*GT, error) {
	if len(ps) != len(qs) {
		return nil, fmt.Errorf("pairing: MultiPair got %d first arguments and %d second", len(ps), len(qs))
	}
	F := pp.field.Fp()
	live := make([]livePair, 0, len(ps))
	for i := range ps {
		if ps[i] == nil || qs[i] == nil {
			return nil, fmt.Errorf("pairing: MultiPair pair %d is nil", i)
		}
		if ps[i].IsInfinity() || qs[i].IsInfinity() {
			continue // ê(P, O) = ê(O, Q) = 1
		}
		live = append(live, livePair{
			mv: newMillerVars(F, ps[i]),
			xQ: toMont(F, qs[i].X()),
			yQ: toMont(F, qs[i].Y()),
		})
	}
	engineCounters.multiCalls.Add(1)
	engineCounters.multiPairs.Add(uint64(len(ps)))
	if len(live) == 0 {
		return pp.One(), nil
	}

	// Independent Miller walks split across workers. Chunking trades the
	// single shared accumulator squaring for one squaring per chunk —
	// profitable only when the chunks actually run on separate cores and
	// each worker keeps at least two pairs, hence the len/2 bound. The
	// split is exact: ∏ₖ (chunk product)ₖ = ∏ᵢ fᵢ because every fᵢ is the
	// same field element regardless of which accumulator it folds into,
	// and the index-ordered merge makes the result bit-identical across
	// schedules (and to the single-chunk walk).
	var f *gf.Element
	if w := parallel.Workers(len(live) / 2); w <= 1 {
		f = pp.millerProduct(live)
	} else {
		fs := make([]*gf.Element, w)
		parallel.Fan(w, func(k int) {
			lo, hi := k*len(live)/w, (k+1)*len(live)/w
			fs[k] = pp.millerProduct(live[lo:hi])
		})
		f = fs[0]
		for _, fk := range fs[1:] {
			f.Mul(f, fk)
		}
	}
	v, err := pp.finalExp(f)
	if err != nil {
		return nil, err
	}
	return &GT{v: v, q: pp.curve.Q()}, nil
}

// livePair is one contributing (P, Q) pair of a MultiPair product: the
// Miller walk state for P and the distorted second argument's coordinates.
type livePair struct {
	mv     *millerVars
	xQ, yQ []uint64
}

// millerProduct runs the lock-step shared-squaring Miller loop over live and
// returns the un-exponentiated accumulator ∏ᵢ fᵢ.
func (pp *Params) millerProduct(live []livePair) *gf.Element {
	fld := pp.field
	F := fld.Fp()
	f := fld.One()
	line := fld.One()
	a, b, c := F.NewElt(), F.NewElt(), F.NewElt()
	lr, li := F.NewElt(), F.NewElt()
	mulLine := func(lp *livePair) {
		F.Mul(lr, b, lp.xQ)
		F.Add(lr, lr, a)
		F.Mul(li, c, lp.yQ)
		f.Mul(f, fld.SetMont(line, lr, li))
	}
	n := pp.curve.Q()
	for i := n.BitLen() - 2; i >= 0; i-- {
		f.Square(f) // shared: (∏fⱼ)² = ∏fⱼ²
		for j := range live {
			if live[j].mv.doubleStep(a, b, c) {
				mulLine(&live[j])
			}
		}
		if n.Bit(i) == 1 {
			for j := range live {
				if live[j].mv.addStep(a, b, c) {
					mulLine(&live[j])
				}
			}
		}
	}
	return f
}

// fixedStep is one replayable instruction of a FixedPair program: square the
// accumulator (doubling steps), then — unless the step's line was vertical —
// multiply by (alpha·x_Q + beta) + y_Q·i.
type fixedStep struct {
	square      bool
	alpha, beta []uint64 // Montgomery form; nil alpha ⇒ no line this step
}

// FixedPair is a fixed-first-argument pairing evaluator: NewFixedPair walks
// the Miller loop of ê(P, ·) once, records every line's coefficients
// normalized to the monic form (α·x_Q + β) + y_Q·i (the 1/c scale is another
// F_p* factor the final exponentiation kills), and Pair replays the program
// against any second argument. A replay performs no point arithmetic and no
// modular inversions — one multiplication per line evaluation plus the
// accumulator update — which is where the ≥2× speedup over Pair comes from.
//
// The loop structure depends only on P and the group order, so the program
// is valid for every Q. Immutable and safe for concurrent use after
// construction. Memory: two field elements per recorded line, ~2·|q| lines.
type FixedPair struct {
	pp    *Params //cryptolint:public (system parameters)
	steps []fixedStep
}

// NewFixedPair precomputes the Miller-loop program for ê(p1, ·). The fixed
// argument must be a non-infinity point of the order-q subgroup — the same
// precondition under which the recorded program's line normalization is
// well-defined (every chord/tangent in the walk is non-degenerate).
// Construction costs about one Miller loop plus a single batched inversion.
func (pp *Params) NewFixedPair(p1 *curve.Point) (*FixedPair, error) {
	if p1 == nil || p1.IsInfinity() {
		return nil, fmt.Errorf("pairing: cannot precompute a Miller program for the point at infinity")
	}
	if !p1.InSubgroup() {
		return nil, fmt.Errorf("pairing: fixed pairing argument escapes the order-q subgroup")
	}
	F := pp.field.Fp()
	mv := newMillerVars(F, p1)
	n := pp.curve.Q()

	steps := make([]fixedStep, 0, 2*n.BitLen())
	// Raw per-line coefficients, normalized after the walk with one batched
	// inversion of the c column.
	var as, bs, cs [][]uint64
	record := func(square bool, produced bool, a, b, c []uint64) {
		st := fixedStep{square: square}
		if produced {
			as = append(as, a)
			bs = append(bs, b)
			cs = append(cs, c)
			st.alpha = b // placeholder; rewritten below
		}
		steps = append(steps, st)
	}
	for i := n.BitLen() - 2; i >= 0; i-- {
		a, b, c := F.NewElt(), F.NewElt(), F.NewElt()
		record(true, mv.doubleStep(a, b, c), a, b, c)
		if n.Bit(i) == 1 {
			a, b, c = F.NewElt(), F.NewElt(), F.NewElt()
			record(false, mv.addStep(a, b, c), a, b, c)
		}
	}

	invs, err := batchInvert(F, cs)
	if err != nil {
		// Impossible for subgroup points: every recorded line's scale
		// c ∈ {2YZ³, Z·H·(…)} is nonzero off the degenerate cases, which emit
		// no line. Surfaced for corrupted inputs rather than silently caching
		// a wrong program.
		return nil, fmt.Errorf("pairing: degenerate line in fixed-argument precomputation: %w", err)
	}
	li := 0
	for i := range steps {
		if steps[i].alpha == nil {
			continue
		}
		F.Mul(bs[li], bs[li], invs[li])
		F.Mul(as[li], as[li], invs[li])
		steps[i].alpha, steps[i].beta = bs[li], as[li]
		li++
	}
	engineCounters.fixedBuilds.Add(1)
	return &FixedPair{pp: pp, steps: steps}, nil
}

// Pair computes ê(P, q1) for the fixed P by replaying the precomputed line
// program, bit-identical to Params.Pair(P, q1). ê(P, O) = 1.
func (fp *FixedPair) Pair(q1 *curve.Point) (*GT, error) {
	pp := fp.pp
	if q1.IsInfinity() {
		return pp.One(), nil
	}
	fld := pp.field
	F := fld.Fp()
	xQ, yQ := toMont(F, q1.X()), toMont(F, q1.Y())

	f := fld.One()
	line := fld.One()
	re := F.NewElt()
	for i := range fp.steps {
		st := &fp.steps[i]
		if st.square {
			f.Square(f)
		}
		if st.alpha == nil {
			continue
		}
		F.Mul(re, st.alpha, xQ)
		F.Add(re, re, st.beta)
		f.Mul(f, fld.SetMont(line, re, yQ))
	}
	v, err := pp.finalExp(f)
	if err != nil {
		return nil, err
	}
	return &GT{v: v, q: pp.curve.Q()}, nil
}

// Lines returns the number of recorded line evaluations (memory
// diagnostics: two field elements are stored per line).
func (fp *FixedPair) Lines() int {
	n := 0
	for i := range fp.steps {
		if fp.steps[i].alpha != nil {
			n++
		}
	}
	return n
}

// batchInvert computes the field inverses of xs with Montgomery's
// simultaneous-inversion trick: one Fermat inversion plus 3(n−1)
// multiplications, all in the limb domain. It errors if any element is
// zero.
func batchInvert(F *fp.Field, xs [][]uint64) ([][]uint64, error) {
	if len(xs) == 0 {
		return nil, nil
	}
	prefix := make([][]uint64, len(xs))
	acc := F.NewElt()
	F.SetOne(acc)
	for i, x := range xs {
		if F.IsZero(x) {
			return nil, fmt.Errorf("element %d is zero", i)
		}
		prefix[i] = F.NewElt()
		F.Set(prefix[i], acc)
		F.Mul(acc, acc, x)
	}
	// Line scales are public values; the variable-time inverse is safe here.
	if err := F.InvVarTime(acc, acc); err != nil {
		return nil, fmt.Errorf("product is not invertible mod p")
	}
	out := make([][]uint64, len(xs))
	for i := len(xs) - 1; i >= 0; i-- {
		out[i] = F.NewElt()
		F.Mul(out[i], acc, prefix[i])
		F.Mul(acc, acc, xs[i])
	}
	return out, nil
}

// expUnitary computes g^e for a unitary g (norm 1 — the output of the final
// exponentiation's easy part) with 4-bit fixed windows: each window costs
// four cheap unitary squarings plus at most one general multiplication,
// against the bit-at-a-time square-and-multiply of the generic gf exponent
// path.
func expUnitary(fld *gf.Field, g *gf.Element, e *big.Int) *gf.Element {
	bits := e.BitLen()
	if bits == 0 {
		return fld.One()
	}
	// Odd and even powers g¹..g¹⁵; unitary elements stay unitary under
	// multiplication, so every intermediate remains eligible for
	// SquareUnitary.
	var tab [15]*gf.Element
	tab[0] = g.Copy()
	for i := 1; i < 15; i++ {
		tab[i] = new(gf.Element).Mul(tab[i-1], g)
	}
	windows := (bits + 3) / 4
	out := fld.One()
	started := false
	for w := windows - 1; w >= 0; w-- {
		if started {
			out.SquareUnitary(out)
			out.SquareUnitary(out)
			out.SquareUnitary(out)
			out.SquareUnitary(out)
		}
		d := 0
		for b := 3; b >= 0; b-- {
			d <<= 1
			if e.Bit(4*w+b) == 1 {
				d |= 1
			}
		}
		if d != 0 {
			if started {
				out.Mul(out, tab[d-1])
			} else {
				out.Set(tab[d-1])
				started = true
			}
		}
	}
	if !started {
		return fld.One()
	}
	return out
}

package core

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"
	"time"
)

// Revocation durability. The paper's SEM "remains online all the system's
// lifetime", which in practice means surviving restarts without forgetting
// who was revoked — otherwise a crash would silently unrevoke everyone.
// Journal gives Registry an append-only JSONL log: every Revoke/Unrevoke
// is recorded before it takes effect, and OpenJournal replays the log on
// startup. cmd/semd wires this behind its -journal flag.

// journalRecord is one line of the append-only log.
type journalRecord struct {
	Op     string    `json:"op"` // "revoke" | "unrevoke"
	ID     string    `json:"id"`
	Reason string    `json:"reason,omitempty"`
	When   time.Time `json:"when"`
}

// Journal is a Registry bound to an append-only log file. It embeds the
// registry semantics by delegation (not embedding, to keep the persisted
// mutations on the write path).
type Journal struct {
	mu  sync.Mutex
	reg *Registry
	f   *os.File
	enc *json.Encoder
}

// OpenJournal opens (creating if needed) the log at path, replays it into
// a fresh Registry and returns the bound journal. Corrupt trailing lines
// (a crash mid-write) are tolerated: replay stops at the first undecodable
// line.
func OpenJournal(path string) (*Journal, error) {
	reg := NewRegistry()
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o600)
	if err != nil {
		return nil, fmt.Errorf("open revocation journal: %w", err)
	}
	scanner := bufio.NewScanner(f)
	for scanner.Scan() {
		line := scanner.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec journalRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			// Torn final write: stop replaying, keep what we have.
			break
		}
		switch rec.Op {
		case "revoke":
			reg.mu.Lock()
			reg.revoked[rec.ID] = RevocationEntry{ID: rec.ID, Reason: rec.Reason, When: rec.When}
			reg.mu.Unlock()
		case "unrevoke":
			reg.mu.Lock()
			delete(reg.revoked, rec.ID)
			reg.mu.Unlock()
		}
	}
	if err := scanner.Err(); err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("replay revocation journal: %w", err)
	}
	if _, err := f.Seek(0, 2); err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("seek revocation journal: %w", err)
	}
	return &Journal{reg: reg, f: f, enc: json.NewEncoder(f)}, nil
}

// Registry returns the replayed, live registry. SEMs share it as usual;
// only mutations made through the Journal are persisted.
func (j *Journal) Registry() *Registry { return j.reg }

// Revoke persists and applies a revocation. The write happens before the
// in-memory effect so a crash can lose an *intended* revocation's effect
// only together with its record, never record an effect it lost.
func (j *Journal) Revoke(id, reason string) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	now := time.Now()
	if err := j.append(journalRecord{Op: "revoke", ID: id, Reason: reason, When: now}); err != nil {
		return err
	}
	j.reg.Revoke(id, reason)
	return nil
}

// Unrevoke persists and applies a reinstatement.
func (j *Journal) Unrevoke(id string) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.append(journalRecord{Op: "unrevoke", ID: id, When: time.Now()}); err != nil {
		return err
	}
	j.reg.Unrevoke(id)
	return nil
}

func (j *Journal) append(rec journalRecord) error {
	if j.f == nil {
		return errors.New("core: journal is closed")
	}
	if err := j.enc.Encode(rec); err != nil {
		return fmt.Errorf("append revocation journal: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("sync revocation journal: %w", err)
	}
	return nil
}

// Close releases the log file. The registry stays usable (read-only
// semantics — further journal mutations fail).
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}

package core

import (
	"bytes"
	"crypto/rand"
	"errors"
	"testing"

	"repro/internal/bf"
	"repro/internal/pairing"
)

const msgLen = 32

func ibeFixture(t *testing.T) (*MediatedPKG, *IBESEM) {
	t.Helper()
	pp, err := pairing.Toy()
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := NewMediatedPKG(rand.Reader, pp, msgLen)
	if err != nil {
		t.Fatal(err)
	}
	sem := NewIBESEM(pkg.Public(), NewRegistry())
	return pkg, sem
}

func enroll(t *testing.T, pkg *MediatedPKG, sem *IBESEM, id string) *UserKeyHalf {
	t.Helper()
	user, semHalf, err := pkg.SplitExtract(rand.Reader, id)
	if err != nil {
		t.Fatal(err)
	}
	sem.Register(semHalf)
	return user
}

func TestMediatedIBERoundTrip(t *testing.T) {
	pkg, sem := ibeFixture(t)
	alice := enroll(t, pkg, sem, "alice@example.com")
	msg := bytes.Repeat([]byte{0xA1}, msgLen)
	c, err := pkg.Public().Encrypt(rand.Reader, "alice@example.com", msg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decrypt(sem, alice, c)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("decrypted %x, want %x", got, msg)
	}
}

func TestSplitCompleteness(t *testing.T) {
	// d_user + d_sem must equal the full FullIdent key: a recombined key
	// decrypts directly.
	pkg, _ := ibeFixture(t)
	user, semHalf, err := pkg.SplitExtract(rand.Reader, "bob@example.com")
	if err != nil {
		t.Fatal(err)
	}
	full, err := RecombineKey(user, semHalf)
	if err != nil {
		t.Fatal(err)
	}
	msg := bytes.Repeat([]byte{3}, msgLen)
	c, _ := pkg.Public().Encrypt(rand.Reader, "bob@example.com", msg)
	got, err := pkg.Public().Decrypt(full, c)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("recombined key failed to decrypt")
	}
}

func TestRecombineKeyIdentityMismatch(t *testing.T) {
	pkg, _ := ibeFixture(t)
	ua, _, _ := pkg.SplitExtract(rand.Reader, "a@x")
	_, sb, _ := pkg.SplitExtract(rand.Reader, "b@x")
	if _, err := RecombineKey(ua, sb); err == nil {
		t.Fatal("cross-identity recombination accepted")
	}
}

func TestSplitIsRandomized(t *testing.T) {
	pkg, _ := ibeFixture(t)
	u1, s1, _ := pkg.SplitExtract(rand.Reader, "x@x")
	u2, s2, _ := pkg.SplitExtract(rand.Reader, "x@x")
	if u1.D.Equal(u2.D) {
		t.Fatal("two splits produced the same user half")
	}
	// Both splits must recombine to the same full key.
	f1, _ := RecombineKey(u1, s1)
	f2, _ := RecombineKey(u2, s2)
	if !f1.D.Equal(f2.D) {
		t.Fatal("splits recombine to different keys")
	}
}

func TestRevocationStopsDecryption(t *testing.T) {
	pkg, sem := ibeFixture(t)
	alice := enroll(t, pkg, sem, "alice@example.com")
	msg := bytes.Repeat([]byte{1}, msgLen)
	c, _ := pkg.Public().Encrypt(rand.Reader, "alice@example.com", msg)

	// Works before revocation.
	if _, err := Decrypt(sem, alice, c); err != nil {
		t.Fatalf("pre-revocation decrypt failed: %v", err)
	}
	sem.Registry().Revoke("alice@example.com", "left the company")
	if _, err := Decrypt(sem, alice, c); !errors.Is(err, ErrRevoked) {
		t.Fatalf("revoked identity still decrypts: %v", err)
	}
	// Unrevoke restores capability instantly.
	if !sem.Registry().Unrevoke("alice@example.com") {
		t.Fatal("unrevoke reported identity not revoked")
	}
	if _, err := Decrypt(sem, alice, c); err != nil {
		t.Fatalf("post-unrevoke decrypt failed: %v", err)
	}
}

func TestUnknownIdentityRejected(t *testing.T) {
	pkg, sem := ibeFixture(t)
	user, _, _ := pkg.SplitExtract(rand.Reader, "ghost@example.com")
	// SEM never got the half.
	msg := bytes.Repeat([]byte{1}, msgLen)
	c, _ := pkg.Public().Encrypt(rand.Reader, "ghost@example.com", msg)
	if _, err := Decrypt(sem, user, c); !errors.Is(err, ErrUnknownIdentity) {
		t.Fatalf("unknown identity served: %v", err)
	}
}

func TestTokenRejectsBadU(t *testing.T) {
	pkg, sem := ibeFixture(t)
	enroll(t, pkg, sem, "alice@example.com")
	if _, err := sem.Token("alice@example.com", nil); err == nil {
		t.Error("nil U accepted")
	}
	O := pkg.Public().Pairing.Curve().Infinity()
	if _, err := sem.Token("alice@example.com", O); err == nil {
		t.Error("U = O accepted")
	}
	outside, _ := pkg.Public().Pairing.Curve().RandomPoint(rand.Reader)
	for outside.InSubgroup() {
		outside, _ = pkg.Public().Pairing.Curve().RandomPoint(rand.Reader)
	}
	if _, err := sem.Token("alice@example.com", outside); err == nil {
		t.Error("out-of-subgroup U accepted")
	}
}

func TestTokenSingleUse(t *testing.T) {
	// A token for ciphertext C1 must not open a different ciphertext C2
	// (the token is bound to U = H3(σ, M)·P).
	pkg, sem := ibeFixture(t)
	alice := enroll(t, pkg, sem, "alice@example.com")
	m1 := bytes.Repeat([]byte{1}, msgLen)
	m2 := bytes.Repeat([]byte{2}, msgLen)
	c1, _ := pkg.Public().Encrypt(rand.Reader, "alice@example.com", m1)
	c2, _ := pkg.Public().Encrypt(rand.Reader, "alice@example.com", m2)

	token1, err := sem.Token("alice@example.com", c1.U)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UserDecrypt(pkg.Public(), alice, c2, token1); !errors.Is(err, ErrTokenMismatch) {
		t.Fatalf("token reuse across ciphertexts accepted: %v", err)
	}
	// The legitimate use still works.
	got, err := UserDecrypt(pkg.Public(), alice, c1, token1)
	if err != nil || !bytes.Equal(got, m1) {
		t.Fatalf("legitimate token use failed: %v", err)
	}
}

func TestTokenUselessToOtherUsers(t *testing.T) {
	// Alice's token must not help Bob decrypt anything of his own.
	pkg, sem := ibeFixture(t)
	enroll(t, pkg, sem, "alice@example.com")
	bob := enroll(t, pkg, sem, "bob@example.com")
	msgB := bytes.Repeat([]byte{9}, msgLen)
	cB, _ := pkg.Public().Encrypt(rand.Reader, "bob@example.com", msgB)
	// Token computed with Alice's SEM half over Bob's U.
	tokenA, err := sem.Token("alice@example.com", cB.U)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UserDecrypt(pkg.Public(), bob, cB, tokenA); !errors.Is(err, ErrTokenMismatch) {
		t.Fatalf("cross-identity token accepted: %v", err)
	}
}

func TestSEMCompromiseDoesNotBreakOtherUsers(t *testing.T) {
	// The paper's central security comparison (T4): Mallory corrupts the SEM
	// (learns every SEM half) — she can decrypt HER OWN traffic, but still
	// not Alice's, because she lacks Alice's user half.
	pkg, sem := ibeFixture(t)
	_, aliceSEMHalf, err := pkg.SplitExtract(rand.Reader, "alice@example.com")
	if err != nil {
		t.Fatal(err)
	}
	sem.Register(aliceSEMHalf)
	malloryUser, mallorySEMHalf, _ := pkg.SplitExtract(rand.Reader, "mallory@example.com")
	sem.Register(mallorySEMHalf)

	msg := bytes.Repeat([]byte{0x55}, msgLen)
	cAlice, _ := pkg.Public().Encrypt(rand.Reader, "alice@example.com", msg)

	// Mallory + SEM: she can reassemble her own key…
	own, err := RecombineKey(malloryUser, mallorySEMHalf)
	if err != nil {
		t.Fatal(err)
	}
	cMallory, _ := pkg.Public().Encrypt(rand.Reader, "mallory@example.com", msg)
	if _, err := pkg.Public().Decrypt(own, cMallory); err != nil {
		t.Fatalf("colluders cannot even decrypt their own traffic: %v", err)
	}
	// …but Alice's SEM half alone does not decrypt Alice's ciphertext:
	// treating d_ID,sem as if it were the full key fails the validity check.
	bogus := &bf.PrivateKey{ID: "alice@example.com", D: aliceSEMHalf.D}
	if _, err := pkg.Public().Decrypt(bogus, cAlice); !errors.Is(err, bf.ErrInvalidCiphertext) {
		t.Fatalf("SEM half alone decrypted Alice's ciphertext: %v", err)
	}
	// And Mallory's full key is useless against Alice's ciphertext.
	if _, err := pkg.Public().Decrypt(own, cAlice); !errors.Is(err, bf.ErrInvalidCiphertext) {
		t.Fatalf("Mallory's key decrypted Alice's ciphertext: %v", err)
	}
}

func TestConcurrentTokens(t *testing.T) {
	pkg, sem := ibeFixture(t)
	alice := enroll(t, pkg, sem, "alice@example.com")
	msg := bytes.Repeat([]byte{7}, msgLen)
	done := make(chan error)
	for i := 0; i < 8; i++ {
		go func() {
			c, err := pkg.Public().Encrypt(rand.Reader, "alice@example.com", msg)
			if err != nil {
				done <- err
				return
			}
			got, err := Decrypt(sem, alice, c)
			if err == nil && !bytes.Equal(got, msg) {
				err = errors.New("wrong plaintext")
			}
			done <- err
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

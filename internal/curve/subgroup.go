// The subgroup-membership ladder: q·P = O evaluated on the limb Jacobian
// layer, with the verdict cached on the Point.
//
// Every network-facing decode funnels through Point.Validate, whose cost is
// one full-order scalar multiplication — the dominant term of batch
// verification and share ingestion. Two properties make it much cheaper
// than a generic ScalarMul: the scalar is the fixed public order q (its
// w-NAF recoding is computed once per curve and shared), and only the
// identity-or-not verdict is needed, so the final Jacobian-to-affine
// inversion is skipped entirely — the ladder ends at a Z = 0 test.
//
// Points are immutable, so the verdict never changes; InSubgroup memoizes
// it in an atomic tri-state on the Point, making repeated validation of a
// long-lived element (a cached public key, a batch re-verified under a new
// random combination) free after the first check.
package curve

// inSubgroupLimb reports whether q·pt = O using the cached q recoding and
// the limb Jacobian layer; the second result is false when the limb backend
// is unavailable and the caller must fall back to the big.Int path.
// pt must be a non-identity affine point.
func (c *Curve) inSubgroupLimb(pt *Point) (bool, bool) {
	F, ok := c.limbField()
	if !ok {
		return false, false
	}
	digits := c.limb.qNAF
	m := 1 << (c.limb.qW - 2) // odd multiples {1, 3, …, 2m−1}·P
	s := newLjScratch(F)

	bx, by := F.NewElt(), F.NewElt()
	if err := F.FromBig(bx, pt.x); err != nil {
		return false, false
	}
	if err := F.FromBig(by, pt.y); err != nil {
		return false, false
	}

	// Odd-multiple table, batch-normalized to affine with one inversion so
	// the ladder uses only mixed additions (mirrors oddMultiples).
	twoP := newLimbJac(F)
	twoP.setAffine(F, bx, by)
	ljDouble(F, &twoP, s)
	table := make([]limbJac, m)
	prefix := make([][]uint64, m+1)
	table[0] = newLimbJac(F)
	table[0].setAffine(F, bx, by)
	prefix[0] = F.NewElt()
	twoPInf := F.IsZero(twoP.z)
	for i := 1; i < m; i++ {
		table[i] = newLimbJac(F)
		F.Set(table[i].x, table[i-1].x)
		F.Set(table[i].y, table[i-1].y)
		F.Set(table[i].z, table[i-1].z)
		prefix[i] = F.NewElt()
		if twoPInf {
			continue // order-2 base: every odd multiple equals P
		}
		ljAdd(F, &table[i], &twoP, s)
	}
	if err := ljBatchNormalize(F, table, prefix[:m], s); err != nil {
		return false, false
	}

	ny := F.NewElt()
	acc := newLimbJac(F)
	for i := len(digits) - 1; i >= 0; i-- {
		ljDouble(F, &acc, s)
		d := digits[i]
		if d == 0 {
			continue
		}
		var e *limbJac
		if d > 0 {
			e = &table[(d-1)/2]
		} else {
			e = &table[(-d-1)/2]
		}
		if F.IsZero(e.z) {
			continue // odd multiple collapsed to O (tiny-order input): adds nothing
		}
		if d > 0 {
			ljAddMixed(F, &acc, e.x, e.y, s)
		} else {
			F.Neg(ny, e.y)
			ljAddMixed(F, &acc, e.x, ny, s)
		}
	}
	return F.IsZero(acc.z), true
}

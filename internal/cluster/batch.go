package cluster

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/bf"
	"repro/internal/core"
	"repro/internal/wire"
)

// Batched shares: one "shares" request carries every ciphertext point of a
// decryption batch, so a k-ciphertext threshold decryption costs one
// connection and one frame round trip per player instead of k. The
// recombiner validates the returned GT elements (share values and both
// proof commitments) through wire.UnmarshalGTBatch — one combined
// subgroup exponentiation per player response instead of 3k.

// shareItem is one per-ciphertext result inside a batched response.
type shareItem struct {
	OK    bool       `json:"ok"`
	Error string     `json:"error,omitempty"`
	G     []byte     `json:"g,omitempty"`
	Proof *proofWire `json:"proof,omitempty"`
}

// sharesResponse answers a batched "shares" request. The key lookup
// happens once; each ciphertext point is validated and served
// independently so one malformed point fails only its own slot.
func (p *PlayerServer) sharesResponse(req *request) *response {
	p.keysMu.RLock()
	key, ok := p.keys[req.ID]
	p.keysMu.RUnlock()
	if !ok {
		return &response{OK: false, Error: ErrUnknownIdentity.Error()}
	}
	items := make([]shareItem, len(req.Us))
	for i, raw := range req.Us {
		u, err := wire.UnmarshalG1(p.params.Public.Pairing.Curve(), raw)
		if err != nil {
			items[i] = shareItem{Error: "bad ciphertext point: " + err.Error()}
			continue
		}
		ds, err := p.params.ComputeShareWithProof(nil, key, u)
		if err != nil {
			items[i] = shareItem{Error: err.Error()}
			continue
		}
		if p.misbehave != nil {
			ds = p.misbehave(ds)
		}
		items[i] = shareItem{
			OK: true,
			G:  ds.G.Bytes(), //cryptolint:public (sanctioned wire serialization edge; the share goes to the recombiner by design)
			Proof: &proofWire{
				W1: ds.Proof.W1.Bytes(), //cryptolint:public (the NIZK proof is public by construction)
				W2: ds.Proof.W2.Bytes(), //cryptolint:public (the NIZK proof is public by construction)
				E:  ds.Proof.E.Bytes(),  //cryptolint:public (the NIZK proof is public by construction)
				V:  ds.Proof.V.Marshal(),
			},
		}
	}
	return &response{OK: true, Index: p.index, Shares: items}
}

// DecryptBatch fans k ciphertexts for one identity out to every reachable
// player in a single round trip per player, verifies every returned
// share's proof, and recombines each ciphertext from t acceptable shares.
// It returns the plaintexts in request order together with the indices of
// rejected players. A player is rejected wholesale — unreachable,
// malformed response, or any share failing decode or NIZK verification —
// because a peer caught lying once is not trustworthy for its other
// shares either.
//
// Like Decrypt, the per-player fetch+verify chains run concurrently, so
// wall time is bounded by the slowest player, not the sum; unlike k
// Decrypt calls, each player is dialed once and its response validated
// with one batched subgroup check.
func (r *Recombiner) DecryptBatch(id string, cs []*bf.BasicCiphertext) (msgs [][]byte, rejected []int, err error) {
	if len(cs) == 0 {
		return nil, nil, nil
	}
	for range cs {
		r.met.decryptStarted()
	}
	us := make([][]byte, len(cs))
	for i, c := range cs {
		us[i] = c.U.Marshal()
	}

	type outcome struct {
		index  int
		shares []*core.DecryptionShare // len(cs) when err == nil
		err    error
	}
	start := time.Now()
	results := make(chan outcome, r.params.N)
	var wg sync.WaitGroup
	for i := 1; i <= r.params.N; i++ {
		addr := r.addrs[i-1]
		if addr == "" { //cryptolint:public (the player's network address, not key material)
			results <- outcome{index: i, err: errors.New("not deployed")}
			continue
		}
		wg.Add(1)
		go func(i int, addr string) {
			defer wg.Done()
			fetchStart := time.Now()
			shares, err := r.fetchShares(addr, id, us)
			if err == nil {
				for j, share := range shares {
					if err = r.params.VerifyShareProof(id, cs[j].U, share); err != nil {
						r.met.verifyFailed()
						break
					}
				}
			}
			r.met.observeFetch(i, time.Since(fetchStart))
			results <- outcome{index: i, shares: shares, err: err}
		}(i, addr)
	}
	wg.Wait()
	r.met.observeQuorumWait(time.Since(start))
	close(results)

	// valid[p] holds one full column of len(cs) shares per accepted player.
	valid := make([][]*core.DecryptionShare, 0, r.params.N)
	for out := range results {
		if out.err != nil {
			rejected = append(rejected, out.index)
			r.met.shareRejected()
			continue
		}
		valid = append(valid, out.shares)
	}
	if len(valid) < r.params.T {
		return nil, rejected, fmt.Errorf("%w: %d of %d", ErrNotEnoughShares, len(valid), r.params.N)
	}

	msgs = make([][]byte, len(cs))
	quorum := make([]*core.DecryptionShare, r.params.T)
	for j := range cs {
		for p := 0; p < r.params.T; p++ {
			quorum[p] = valid[p][j]
		}
		msgs[j], err = r.params.Recombine(quorum, cs[j])
		if err != nil {
			return nil, rejected, fmt.Errorf("cluster: recombining ciphertext %d: %w", j, err)
		}
	}
	return msgs, rejected, nil
}

// fetchShares performs one batched shares request against a player and
// decodes the full column of shares, validating all GT elements with one
// batched subgroup check.
func (r *Recombiner) fetchShares(addr, id string, us [][]byte) ([]*core.DecryptionShare, error) {
	var resp response
	if err := r.roundTrip(addr, &request{Op: "shares", ID: id, Us: us}, &resp); err != nil {
		return nil, err
	}
	if !resp.OK {
		return nil, errors.New(resp.Error)
	}
	if len(resp.Shares) != len(us) {
		return nil, fmt.Errorf("cluster: %d shares for %d ciphertexts", len(resp.Shares), len(us))
	}

	// Column-validate the 3k GT elements (share value + two proof
	// commitments per item) in one pass.
	pp := r.params.Public.Pairing
	raws := make([][]byte, 0, 3*len(resp.Shares))
	for i := range resp.Shares {
		it := &resp.Shares[i]
		if !it.OK {
			return nil, fmt.Errorf("cluster: share %d: %s", i, it.Error)
		}
		if it.Proof == nil {
			return nil, fmt.Errorf("cluster: share %d missing proof", i)
		}
		raws = append(raws, it.G, it.Proof.W1, it.Proof.W2)
	}
	gs, gtErrs, err := wire.UnmarshalGTBatch(pp, raws)
	if err != nil {
		return nil, err
	}
	for i, e := range gtErrs {
		if e != nil {
			return nil, fmt.Errorf("cluster: share %d: %w", i/3, e)
		}
	}

	shares := make([]*core.DecryptionShare, len(resp.Shares))
	for i := range resp.Shares {
		it := &resp.Shares[i]
		v, err := wire.UnmarshalG1(pp.Curve(), it.Proof.V)
		if err != nil {
			return nil, fmt.Errorf("cluster: share %d proof v: %w", i, err)
		}
		e, err := wire.UnmarshalScalar(it.Proof.E, pp.Q())
		if err != nil {
			return nil, fmt.Errorf("cluster: share %d proof e: %w", i, err)
		}
		shares[i] = &core.DecryptionShare{
			Index: resp.Index,
			G:     gs[3*i],
			Proof: &core.ShareProof{W1: gs[3*i+1], W2: gs[3*i+2], E: e, V: v},
		}
	}
	return shares, nil
}

package wire

import (
	"bytes"
	"crypto/rand"
	"errors"
	"math/big"
	"testing"
	"testing/quick"

	"repro/internal/curve"
	"repro/internal/pairing"
)

type payload struct {
	A string `json:"a"`
	B []byte `json:"b"`
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := &payload{A: "hello", B: []byte{1, 2, 3}}
	sent, err := WriteFrame(&buf, in)
	if err != nil {
		t.Fatal(err)
	}
	var out payload
	recv, err := ReadFrame(&buf, &out)
	if err != nil {
		t.Fatal(err)
	}
	if sent != recv {
		t.Fatalf("sent %d, received %d", sent, recv)
	}
	if out.A != in.A || !bytes.Equal(out.B, in.B) {
		t.Fatalf("round trip mismatch: %+v", out)
	}
}

func TestFrameLimits(t *testing.T) {
	var buf bytes.Buffer
	if _, err := WriteFrame(&buf, &payload{B: make([]byte, MaxFrame)}); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized write: %v", err)
	}
	buf.Reset()
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	var out payload
	if _, err := ReadFrame(&buf, &out); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized read: %v", err)
	}
}

func TestFrameMalformed(t *testing.T) {
	var out payload
	// Truncated body.
	buf := bytes.NewBuffer([]byte{0, 0, 0, 9, 'x'})
	if _, err := ReadFrame(buf, &out); !errors.Is(err, ErrProtocol) {
		t.Fatalf("truncated body: %v", err)
	}
	// Invalid JSON.
	buf = bytes.NewBuffer([]byte{0, 0, 0, 2, '{', 'x'})
	if _, err := ReadFrame(buf, &out); !errors.Is(err, ErrProtocol) {
		t.Fatalf("bad JSON: %v", err)
	}
	// Unmarshalable value on write.
	var w bytes.Buffer
	if _, err := WriteFrame(&w, make(chan int)); err == nil {
		t.Fatal("unencodable value accepted")
	}
}

// TestUnmarshalG1 pins the subgroup check at the network boundary: a point
// of cofactor order is a valid curve point (plain Unmarshal accepts it) but
// must be rejected by the hardened decoder the services use.
func TestUnmarshalG1(t *testing.T) {
	pp, err := pairing.Toy()
	if err != nil {
		t.Fatal(err)
	}
	c := pp.Curve()

	good, err := c.RandomG1(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := UnmarshalG1(c, good.Marshal())
	if err != nil {
		t.Fatalf("G1 point rejected: %v", err)
	}
	if !pt.Equal(good) {
		t.Fatal("decoded point differs")
	}

	// Build a cofactor-order point: q·R for random R in the full group.
	var small *curve.Point
	for {
		R, err := c.RandomPoint(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		small = R.ScalarMul(c.Q())
		if !small.IsInfinity() {
			break
		}
	}
	if _, err := c.Unmarshal(small.Marshal()); err != nil {
		t.Fatalf("plain Unmarshal must accept on-curve point: %v", err)
	}
	if _, err := UnmarshalG1(c, small.Marshal()); !errors.Is(err, ErrProtocol) {
		t.Fatalf("cofactor-order point: err = %v, want ErrProtocol", err)
	}
	if _, err := UnmarshalG1(c, []byte{0x02, 0x01}); !errors.Is(err, ErrProtocol) {
		t.Fatalf("garbage encoding: err = %v, want ErrProtocol", err)
	}
}

func TestPackIntsRoundTrip(t *testing.T) {
	xs := []*big.Int{big.NewInt(0), big.NewInt(1), big.NewInt(1 << 40)}
	packed, err := PackInts(xs)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnpackInts(packed)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(xs) {
		t.Fatalf("got %d elements", len(back))
	}
	for i := range xs {
		if xs[i].Cmp(back[i]) != 0 {
			t.Fatalf("element %d mismatch", i)
		}
	}
	// Oversized element.
	big1 := new(big.Int).Lsh(big.NewInt(1), 8*0x10000)
	if _, err := PackInts([]*big.Int{big1}); err == nil {
		t.Fatal("oversized element accepted")
	}
	// Truncations.
	if _, err := UnpackInts(packed[:1]); !errors.Is(err, ErrProtocol) {
		t.Fatalf("truncated header: %v", err)
	}
	if _, err := UnpackInts(packed[:len(packed)-1]); !errors.Is(err, ErrProtocol) {
		t.Fatalf("truncated body: %v", err)
	}
}

func TestQuickPackInts(t *testing.T) {
	cfg := &quick.Config{MaxCount: 100}
	property := func(raw [][]byte) bool {
		xs := make([]*big.Int, 0, len(raw))
		for _, b := range raw {
			if len(b) > 2000 {
				b = b[:2000]
			}
			xs = append(xs, new(big.Int).SetBytes(b))
		}
		packed, err := PackInts(xs)
		if err != nil {
			return false
		}
		back, err := UnpackInts(packed)
		if err != nil || len(back) != len(xs) {
			return false
		}
		for i := range xs {
			if xs[i].Cmp(back[i]) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestUnmarshalGTBatch pins the batched GT decoder: members decode, nil
// slots pass through untouched, and malformed or out-of-subgroup elements
// come back as per-item ErrProtocol findings.
func TestUnmarshalGTBatch(t *testing.T) {
	pp, err := pairing.Toy()
	if err != nil {
		t.Fatal(err)
	}
	g, err := pp.Pair(pp.Generator(), pp.Generator())
	if err != nil {
		t.Fatal(err)
	}
	g7, err := g.Exp(big.NewInt(7))
	if err != nil {
		t.Fatal(err)
	}
	outsider := pp.Field().NewElement(big.NewInt(2), big.NewInt(3))

	raws := [][]byte{
		g.Bytes(),
		nil, // upstream failure slot: stays nil with no error
		g7.Bytes(),
		outsider.Bytes(),
		{0xFF}, // malformed encoding
	}
	gs, errs, err := UnmarshalGTBatch(pp, raws)
	if err != nil {
		t.Fatal(err)
	}
	if gs[0] == nil || !gs[0].Equal(g) || errs[0] != nil {
		t.Fatalf("member 0: %v %v", gs[0], errs[0])
	}
	if gs[1] != nil || errs[1] != nil {
		t.Fatalf("nil slot must pass through: %v %v", gs[1], errs[1])
	}
	if gs[2] == nil || !gs[2].Equal(g7) || errs[2] != nil {
		t.Fatalf("member 2: %v %v", gs[2], errs[2])
	}
	if gs[3] != nil || !errors.Is(errs[3], ErrProtocol) {
		t.Fatalf("out-of-subgroup element: %v %v", gs[3], errs[3])
	}
	if gs[4] != nil || !errors.Is(errs[4], ErrProtocol) {
		t.Fatalf("malformed element: %v %v", gs[4], errs[4])
	}

	// Agreement with the scalar decoder on both verdict classes.
	if _, err := UnmarshalGT(pp, g.Bytes()); err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalGT(pp, outsider.Bytes()); !errors.Is(err, ErrProtocol) {
		t.Fatalf("scalar decoder disagrees: %v", err)
	}
}

// Package curve stubs the module's curve API for fixture type-checking.
package curve

// Curve is the group parameter set.
type Curve struct{}

// Point is a group element.
type Point struct{}

// Unmarshal decodes without subgroup validation.
func (c *Curve) Unmarshal(data []byte) (*Point, error) { return &Point{}, nil }

package repl

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

func openJournal(t *testing.T) *core.Journal {
	t.Helper()
	j, err := core.OpenJournal(filepath.Join(t.TempDir(), "j.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = j.Close() })
	return j
}

func mkRecs(epoch uint64, from, n int) []core.ReplRecord {
	out := make([]core.ReplRecord, n)
	for i := range out {
		out[i] = core.ReplRecord{
			Seq:   uint64(from + i),
			Epoch: epoch,
			Op:    "revoke",
			ID:    fmt.Sprintf("id%03d@x", from+i),
			When:  time.Now().UTC(),
		}
	}
	return out
}

// TestFollowerEpochFence: once a follower has heard from epoch E, any
// sender below E is rejected with ErrStaleEpoch — the deposed-leader
// signature — regardless of what records it carries.
func TestFollowerEpochFence(t *testing.T) {
	f := NewFollower(openJournal(t))
	if err := f.ApplyAppend(3, mkRecs(3, 1, 2)); err != nil {
		t.Fatal(err)
	}
	if epoch, seq := f.Status(); epoch != 3 || seq != 2 {
		t.Fatalf("Status = %d/%d, want 3/2", epoch, seq)
	}
	// The deposed leader still thinks it owns the log.
	err := f.ApplyAppend(2, mkRecs(2, 3, 1))
	if !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("stale append error = %v, want ErrStaleEpoch", err)
	}
	if f.Journal().Registry().IsRevoked("id003@x") {
		t.Error("stale leader's record applied")
	}
	// Snapshots from the stale sender are fenced identically.
	err = f.ApplySnapshotChunk(&SnapshotChunk{Epoch: 2, BaseSeq: 99, Chunks: 1})
	if !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("stale snapshot error = %v, want ErrStaleEpoch", err)
	}
	// The successor at a higher epoch is accepted and adopted.
	if err := f.ApplyAppend(4, mkRecs(4, 3, 1)); err != nil {
		t.Fatal(err)
	}
	if epoch, _ := f.Status(); epoch != 4 {
		t.Errorf("epoch after successor = %d, want 4", epoch)
	}
}

// TestFollowerSeqGapAndRedelivery: redelivered prefixes are skipped
// silently, a batch that would leave a hole fails with ErrSeqGap.
func TestFollowerSeqGapAndRedelivery(t *testing.T) {
	f := NewFollower(openJournal(t))
	if err := f.ApplyAppend(1, mkRecs(1, 1, 3)); err != nil {
		t.Fatal(err)
	}
	// Overlapping redelivery: seqs 2..4, only 4 is new.
	if err := f.ApplyAppend(1, mkRecs(1, 2, 3)); err != nil {
		t.Fatal(err)
	}
	if _, seq := f.Status(); seq != 4 {
		t.Errorf("seq after overlap = %d, want 4", seq)
	}
	err := f.ApplyAppend(1, mkRecs(1, 7, 2))
	if !errors.Is(err, ErrSeqGap) {
		t.Fatalf("gapped append error = %v, want ErrSeqGap", err)
	}
	if _, seq := f.Status(); seq != 4 {
		t.Errorf("seq after refused gap = %d, want 4", seq)
	}
}

// TestFollowerSnapshotAssembly: chunks assemble in order into one install;
// an out-of-order chunk resets the pending assembly; totals must match.
func TestFollowerSnapshotAssembly(t *testing.T) {
	f := NewFollower(openJournal(t))
	when := time.Now().UTC()
	entries := []core.RevocationEntry{
		{ID: "a@x", Reason: "r", When: when},
		{ID: "b@x", Reason: "r", When: when},
		{ID: "c@x", Reason: "r", When: when},
	}
	chunk := func(i int) *SnapshotChunk {
		return &SnapshotChunk{Epoch: 2, BaseSeq: 30, Total: 3, Index: i, Chunks: 3, Entries: entries[i : i+1]}
	}
	if err := f.ApplySnapshotChunk(chunk(0)); err != nil {
		t.Fatal(err)
	}
	// A chunk that does not continue the assembly drops it.
	if err := f.ApplySnapshotChunk(chunk(2)); err == nil {
		t.Fatal("out-of-order chunk accepted")
	}
	// Restart from 0 succeeds.
	for i := 0; i < 3; i++ {
		if err := f.ApplySnapshotChunk(chunk(i)); err != nil {
			t.Fatalf("chunk %d: %v", i, err)
		}
	}
	if epoch, seq := f.Status(); epoch != 2 || seq != 30 {
		t.Errorf("Status after install = %d/%d, want 2/30", epoch, seq)
	}
	for _, e := range entries {
		if !f.Journal().Registry().IsRevoked(e.ID) {
			t.Errorf("%s missing after snapshot install", e.ID)
		}
	}
	// Announced total must match what actually arrived.
	bad := &SnapshotChunk{Epoch: 2, BaseSeq: 31, Total: 5, Index: 0, Chunks: 1, Entries: entries}
	if err := f.ApplySnapshotChunk(bad); err == nil {
		t.Fatal("total mismatch accepted")
	}
}

// memPeer adapts a Follower into the leader's Peer interface without a
// network, with switchable failure injection.
type memPeer struct {
	f    *Follower
	down func() bool // when non-nil and true, every call fails
}

func (p *memPeer) failing() bool { return p.down != nil && p.down() }

func (p *memPeer) ReplStatus() (uint64, uint64, error) {
	if p.failing() {
		return 0, 0, errors.New("memPeer: down")
	}
	e, s := p.f.Status()
	return e, s, nil
}

func (p *memPeer) ReplAppend(leaderEpoch uint64, recs []core.ReplRecord) error {
	if p.failing() {
		return errors.New("memPeer: down")
	}
	return p.f.ApplyAppend(leaderEpoch, recs)
}

func (p *memPeer) ReplSnapshot(c *SnapshotChunk) error {
	if p.failing() {
		return errors.New("memPeer: down")
	}
	return p.f.ApplySnapshotChunk(c)
}

func (p *memPeer) Close() error { return nil }

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestLeaderStreamsToFollowers: mutations issued on the leader reach both
// followers in order, and AckedSeqs converges to the leader's LastSeq.
func TestLeaderStreamsToFollowers(t *testing.T) {
	f1, f2 := NewFollower(openJournal(t)), NewFollower(openJournal(t))
	peers := map[string]*memPeer{"p1": {f: f1}, "p2": {f: f2}}
	l, err := NewLeader(LeaderConfig{
		Journal:       openJournal(t),
		Epoch:         1,
		Peers:         []string{"p1", "p2"},
		Dial:          func(addr string) (Peer, error) { return peers[addr], nil },
		RetryInterval: 10 * time.Millisecond,
		Logf:          t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	for i := 0; i < 20; i++ {
		if err := l.Revoke(fmt.Sprintf("id%02d@x", i), "stream"); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Unrevoke("id00@x"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "both followers to converge", func() bool {
		acked := l.AckedSeqs()
		return acked["p1"] == 21 && acked["p2"] == 21
	})
	for _, f := range []*Follower{f1, f2} {
		reg := f.Journal().Registry()
		if reg.IsRevoked("id00@x") || !reg.IsRevoked("id19@x") {
			t.Error("follower state diverged")
		}
	}
}

// TestLeaderArmsFenceOnConnect: the leader pushes its epoch to a fresh
// follower on first contact (via the resync snapshot, which durably adopts
// the epoch) before any mutation happens, so the follower's not_leader
// fence (and stale-sender rejection) is armed from the fleet's first
// moments, not from the first revocation.
func TestLeaderArmsFenceOnConnect(t *testing.T) {
	f := NewFollower(openJournal(t))
	l, err := NewLeader(LeaderConfig{
		Journal:       openJournal(t),
		Epoch:         5,
		Peers:         []string{"p"},
		Dial:          func(string) (Peer, error) { return &memPeer{f: f}, nil },
		RetryInterval: 10 * time.Millisecond,
		Logf:          t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	waitFor(t, "follower to adopt the leader epoch", func() bool {
		epoch, _ := f.Status()
		return epoch == 5
	})
	if _, seq := f.Status(); seq != 0 {
		t.Errorf("fence arming moved the sequence to %d", seq)
	}
	// Armed means fenced: an older sender is now rejected.
	if err := f.ApplyAppend(4, mkRecs(4, 1, 1)); !errors.Is(err, ErrStaleEpoch) {
		t.Errorf("pre-mutation stale sender error = %v, want ErrStaleEpoch", err)
	}
}

// TestLeaderCatchUpAfterFollowerOutage is the tentpole's acceptance
// scenario at package level: a follower down during a run of revocations
// converges via suffix catch-up once it returns.
func TestLeaderCatchUpAfterFollowerOutage(t *testing.T) {
	f := NewFollower(openJournal(t))
	var down atomicBool
	peer := &memPeer{f: f, down: down.get}
	l, err := NewLeader(LeaderConfig{
		Journal:       openJournal(t),
		Epoch:         1,
		Peers:         []string{"p"},
		Dial:          func(string) (Peer, error) { return peer, nil },
		RetryInterval: 10 * time.Millisecond,
		Logf:          t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	if err := l.Revoke("before@x", "r"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "initial replication", func() bool { return l.AckedSeqs()["p"] == 1 })

	down.set(true)
	for i := 0; i < 5; i++ {
		if err := l.Revoke(fmt.Sprintf("during%d@x", i), "outage"); err != nil {
			t.Fatal(err)
		}
	}
	if _, seq := f.Status(); seq != 1 {
		t.Fatalf("follower advanced to %d while down", seq)
	}
	down.set(false)
	waitFor(t, "catch-up after outage", func() bool { return l.AckedSeqs()["p"] == 6 })
	if !f.Journal().Registry().IsRevoked("during4@x") {
		t.Error("outage-window revocation missing after catch-up")
	}
}

// TestLeaderSnapshotFallback: when the leader's tail has been trimmed past
// a follower's position, catch-up switches to a full snapshot transfer.
func TestLeaderSnapshotFallback(t *testing.T) {
	lj := openJournal(t)
	lj.SetTailLimit(4)
	// Build history far beyond the tail before the follower ever connects.
	for i := 0; i < 40; i++ {
		if err := lj.Revoke(fmt.Sprintf("id%02d@x", i), "history"); err != nil {
			t.Fatal(err)
		}
	}
	f := NewFollower(openJournal(t))
	l, err := NewLeader(LeaderConfig{
		Journal:       lj,
		Epoch:         2,
		Peers:         []string{"p"},
		Dial:          func(string) (Peer, error) { return &memPeer{f: f}, nil },
		RetryInterval: 10 * time.Millisecond,
		SnapshotBatch: 7, // force a multi-chunk transfer
		Logf:          t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	waitFor(t, "snapshot catch-up", func() bool { return l.AckedSeqs()["p"] == 40 })
	if epoch, seq := f.Status(); epoch != 2 || seq != 40 {
		t.Errorf("follower at %d/%d after snapshot, want 2/40", epoch, seq)
	}
	if !f.Journal().Registry().IsRevoked("id00@x") || !f.Journal().Registry().IsRevoked("id39@x") {
		t.Error("snapshot state incomplete")
	}
	// Incremental streaming resumes after the snapshot.
	if err := l.Revoke("tail@x", "post-snap"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "post-snapshot append", func() bool { return l.AckedSeqs()["p"] == 41 })
	if !f.Journal().Registry().IsRevoked("tail@x") {
		t.Error("post-snapshot append missing")
	}
}

// TestLeaderResyncsDivergentLegacyFollower: log matching on first contact.
// A follower carrying a pre-replication journal has self-assigned sequence
// numbers — the same seq values index a *different history* than the
// leader's. Streaming only the leader's suffix past the follower's lastSeq
// would permanently withhold every leader record at or below that number
// while repl_peer_lag reads 0. The leader must instead detect the
// unverifiable position (follower epoch below its own) and install a full
// snapshot, converging the follower to exactly the leader's state.
func TestLeaderResyncsDivergentLegacyFollower(t *testing.T) {
	// Follower: a legacy journal with two self-sequenced local mutations
	// (epoch 0 — no leader has ever spoken to it).
	fj := openJournal(t)
	for _, id := range []string{"local0@x", "local1@x"} {
		if err := fj.Revoke(id, "pre-replication"); err != nil {
			t.Fatal(err)
		}
	}
	f := NewFollower(fj)

	// Leader: a different history, longer than the follower's.
	lj := openJournal(t)
	for _, id := range []string{"a@x", "b@x", "c@x"} {
		if err := lj.Revoke(id, "authoritative"); err != nil {
			t.Fatal(err)
		}
	}
	l, err := NewLeader(LeaderConfig{
		Journal:       lj,
		Epoch:         1,
		Peers:         []string{"p"},
		Dial:          func(string) (Peer, error) { return &memPeer{f: f}, nil },
		RetryInterval: 10 * time.Millisecond,
		Logf:          t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	waitFor(t, "divergent follower resynced", func() bool { return l.AckedSeqs()["p"] == 3 })
	reg := f.Journal().Registry()
	for _, id := range []string{"a@x", "b@x", "c@x"} {
		if !reg.IsRevoked(id) {
			t.Errorf("leader record %s missing after resync — the exact hole catch-up exists to close", id)
		}
	}
	for _, id := range []string{"local0@x", "local1@x"} {
		if reg.IsRevoked(id) {
			t.Errorf("self-sequenced legacy record %s survived the resync", id)
		}
	}
	if epoch, seq := f.Status(); epoch != 1 || seq != 3 {
		t.Errorf("follower at %d/%d after resync, want 1/3", epoch, seq)
	}
	// Incremental streaming takes over once the histories match.
	if err := l.Revoke("after@x", "post-resync"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "post-resync append", func() bool { return l.AckedSeqs()["p"] == 4 })
	if !reg.IsRevoked("after@x") {
		t.Error("post-resync append missing")
	}
}

// TestLeaderResyncsAheadFollower: the other divergence signature — a
// follower whose lastSeq exceeds the leader's (a same-epoch misconfig or a
// leader restarted on a shorter journal). TailSince(after >= lastSeq)
// would report "caught up" and the follower would keep records at seqs the
// leader will later reassign to different mutations. The leader must
// rewind it with a snapshot instead.
func TestLeaderResyncsAheadFollower(t *testing.T) {
	// Follower ahead at the same epoch: 5 records at epoch 3.
	f := NewFollower(openJournal(t))
	if err := f.ApplyAppend(3, mkRecs(3, 1, 5)); err != nil {
		t.Fatal(err)
	}
	// Leader at the same epoch with a shorter (2-record) history.
	lj := openJournal(t)
	if err := lj.Revoke("short0@x", "r"); err != nil {
		t.Fatal(err)
	}
	if err := lj.Revoke("short1@x", "r"); err != nil {
		t.Fatal(err)
	}
	l, err := NewLeader(LeaderConfig{
		Journal:       lj,
		Epoch:         3,
		Peers:         []string{"p"},
		Dial:          func(string) (Peer, error) { return &memPeer{f: f}, nil },
		RetryInterval: 10 * time.Millisecond,
		Logf:          t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	waitFor(t, "ahead follower rewound", func() bool {
		_, seq := f.Status()
		return seq == 2
	})
	reg := f.Journal().Registry()
	if !reg.IsRevoked("short0@x") || !reg.IsRevoked("short1@x") {
		t.Error("leader state missing after rewind")
	}
	if reg.IsRevoked("id003@x") {
		t.Error("ahead follower's phantom record survived the rewind")
	}
}

// TestLeaderDeposedByHigherEpoch: a follower that has adopted a higher
// epoch deposes the leader — replication stops and further mutations fail
// typed with ErrStaleEpoch.
func TestLeaderDeposedByHigherEpoch(t *testing.T) {
	f := NewFollower(openJournal(t))
	l, err := NewLeader(LeaderConfig{
		Journal:       openJournal(t),
		Epoch:         2,
		Peers:         []string{"p"},
		Dial:          func(string) (Peer, error) { return &memPeer{f: f}, nil },
		RetryInterval: 10 * time.Millisecond,
		Logf:          t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Revoke("a@x", "r"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "initial replication", func() bool { return l.AckedSeqs()["p"] == 1 })

	// The successor leader (epoch 3) speaks to the follower directly.
	if err := f.ApplyAppend(3, []core.ReplRecord{{Seq: 2, Epoch: 3, Op: "revoke", ID: "succ@x", When: time.Now().UTC()}}); err != nil {
		t.Fatal(err)
	}
	// The old leader's next append is fenced; it must notice and stop.
	if err := l.Revoke("b@x", "r"); err != nil {
		t.Fatal(err) // accepted locally: deposition not yet observed
	}
	waitFor(t, "deposition", func() bool { return l.Deposed() })
	if err := l.Revoke("c@x", "r"); !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("deposed Revoke error = %v, want ErrStaleEpoch", err)
	}
	if err := l.Unrevoke("a@x"); !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("deposed Unrevoke error = %v, want ErrStaleEpoch", err)
	}
	if f.Journal().Registry().IsRevoked("b@x") {
		t.Error("deposed leader's append reached the follower")
	}
}

// TestNewLeaderEpochRegress: starting a leader below the journal's known
// epoch is the operator error fencing exists to catch — refused up front.
func TestNewLeaderEpochRegress(t *testing.T) {
	j := openJournal(t)
	if err := j.SetEpoch(5); err != nil {
		t.Fatal(err)
	}
	if _, err := NewLeader(LeaderConfig{Journal: j, Epoch: 3}); err == nil {
		t.Fatal("epoch regression accepted")
	}
	if _, err := NewLeader(LeaderConfig{Journal: nil, Epoch: 1}); err == nil {
		t.Fatal("nil journal accepted")
	}
	if _, err := NewLeader(LeaderConfig{Journal: j, Epoch: 5, Peers: []string{"p"}}); err == nil {
		t.Fatal("peers without dialer accepted")
	}
}

// atomicBool is a tiny test helper (sync/atomic.Bool hidden behind funcs
// so memPeer can poll it).
type atomicBool struct {
	mu sync.Mutex
	v  bool
}

func (b *atomicBool) set(v bool) { b.mu.Lock(); b.v = v; b.mu.Unlock() }
func (b *atomicBool) get() bool  { b.mu.Lock(); defer b.mu.Unlock(); return b.v }

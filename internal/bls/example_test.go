package bls_test

import (
	"crypto/rand"
	"fmt"

	"repro/internal/bls"
	"repro/internal/pairing"
	"repro/internal/shamir"
)

// ExampleCombine demonstrates Boldyreva threshold signing: any t of n
// partial signatures combine into one ordinary GDH signature.
func ExampleCombine() {
	pp, err := pairing.Fast()
	if err != nil {
		fmt.Println(err)
		return
	}
	dealer, err := bls.NewThresholdDealer(rand.Reader, pp, 2, 3)
	if err != nil {
		fmt.Println(err)
		return
	}
	msg := []byte("threshold-signed")
	var partials []shamir.PointShare
	for _, i := range []int{1, 3} { // any 2-of-3 subset
		share, err := dealer.PlayerShare(i)
		if err != nil {
			fmt.Println(err)
			return
		}
		partial, err := bls.SignShare(pp, share, msg)
		if err != nil {
			fmt.Println(err)
			return
		}
		partials = append(partials, partial)
	}
	sig, err := bls.Combine(pp, partials, 2)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("verifies:", dealer.GroupKey().Verify(msg, sig) == nil)
	// Output:
	// verifies: true
}

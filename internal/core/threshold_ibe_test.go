package core

import (
	"bytes"
	"crypto/rand"
	"errors"
	"testing"

	"repro/internal/pairing"
)

func thresholdFixture(t *testing.T, tt, n int) *ThresholdPKG {
	t.Helper()
	pp, err := pairing.Toy()
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := SetupThreshold(rand.Reader, pp, msgLen, tt, n)
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}

func issueShares(t *testing.T, pkg *ThresholdPKG, id string) []*KeyShare {
	t.Helper()
	shares := make([]*KeyShare, pkg.Params().N)
	for i := 1; i <= pkg.Params().N; i++ {
		ks, err := pkg.ExtractShare(id, i)
		if err != nil {
			t.Fatal(err)
		}
		if err := pkg.Params().VerifyKeyShare(ks); err != nil {
			t.Fatalf("honest key share %d rejected: %v", i, err)
		}
		shares[i-1] = ks
	}
	return shares
}

func TestSetupThresholdValidation(t *testing.T) {
	pp, _ := pairing.Toy()
	if _, err := SetupThreshold(rand.Reader, pp, msgLen, 0, 3); err == nil {
		t.Error("t=0 accepted")
	}
	if _, err := SetupThreshold(rand.Reader, pp, msgLen, 4, 3); err == nil {
		t.Error("t>n accepted")
	}
}

func TestVerifySetupSubsets(t *testing.T) {
	pkg := thresholdFixture(t, 3, 5)
	p := pkg.Params()
	for _, subset := range [][]int{{1, 2, 3}, {1, 4, 5}, {2, 3, 5}} {
		if err := p.VerifySetup(subset); err != nil {
			t.Errorf("subset %v: %v", subset, err)
		}
	}
	if err := p.VerifySetup([]int{0, 1, 2}); err == nil {
		t.Error("out-of-range subset accepted")
	}
}

func TestThresholdDecryption(t *testing.T) {
	pkg := thresholdFixture(t, 3, 5)
	p := pkg.Params()
	id := "alice@example.com"
	keyShares := issueShares(t, pkg, id)

	msg := bytes.Repeat([]byte{0xC4}, msgLen)
	c, err := p.Public.EncryptBasic(rand.Reader, id, msg)
	if err != nil {
		t.Fatal(err)
	}
	// Players 2, 4, 5 contribute.
	var shares []*DecryptionShare
	for _, i := range []int{2, 4, 5} {
		shares = append(shares, mustShare(t, p, keyShares[i-1], c.U))
	}
	got, err := p.Recombine(shares, c)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("recombined %x, want %x", got, msg)
	}
}

func TestThresholdMatchesCentralizedDecryption(t *testing.T) {
	// g from share recombination must equal ê(U, s·Q_ID): decrypting with a
	// centrally-extracted key gives the same plaintext.
	pkg := thresholdFixture(t, 2, 3)
	p := pkg.Params()
	id := "bob@example.com"
	keyShares := issueShares(t, pkg, id)
	msg := bytes.Repeat([]byte{0xD2}, msgLen)
	c, _ := p.Public.EncryptBasic(rand.Reader, id, msg)

	shares := []*DecryptionShare{
		mustShare(t, p, keyShares[0], c.U),
		mustShare(t, p, keyShares[2], c.U),
	}
	viaThreshold, err := p.Recombine(shares, c)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(viaThreshold, msg) {
		t.Fatal("threshold decryption wrong")
	}
}

func TestFewerThanTSharesFail(t *testing.T) {
	pkg := thresholdFixture(t, 3, 5)
	p := pkg.Params()
	id := "x@x"
	keyShares := issueShares(t, pkg, id)
	msg := bytes.Repeat([]byte{1}, msgLen)
	c, _ := p.Public.EncryptBasic(rand.Reader, id, msg)
	shares := []*DecryptionShare{
		mustShare(t, p, keyShares[0], c.U),
		mustShare(t, p, keyShares[1], c.U),
	}
	if _, err := p.Recombine(shares, c); !errors.Is(err, ErrNotEnoughValidShares) {
		t.Fatalf("t−1 shares recombined: %v", err)
	}
}

func TestCorruptKeyShareDetected(t *testing.T) {
	pkg := thresholdFixture(t, 2, 3)
	p := pkg.Params()
	ks, _ := pkg.ExtractShare("victim@x", 1)
	ks.D = ks.D.Double() // PKG "mistake"
	if err := p.VerifyKeyShare(ks); !errors.Is(err, ErrShareVerification) {
		t.Fatalf("corrupt key share accepted: %v", err)
	}
	ks2, _ := pkg.ExtractShare("victim@x", 2)
	ks2.Index = 1 // claim a different slot
	if err := p.VerifyKeyShare(ks2); !errors.Is(err, ErrShareVerification) {
		t.Fatalf("misattributed key share accepted: %v", err)
	}
	bad := &KeyShare{ID: "victim@x", Index: 99, D: ks.D}
	if err := p.VerifyKeyShare(bad); err == nil {
		t.Fatal("out-of-range index accepted")
	}
}

func TestRobustnessProofs(t *testing.T) {
	pkg := thresholdFixture(t, 3, 5)
	p := pkg.Params()
	id := "carol@example.com"
	keyShares := issueShares(t, pkg, id)
	msg := bytes.Repeat([]byte{0xEE}, msgLen)
	c, _ := p.Public.EncryptBasic(rand.Reader, id, msg)

	for _, i := range []int{1, 3, 5} {
		ds, err := p.ComputeShareWithProof(rand.Reader, keyShares[i-1], c.U)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.VerifyShareProof(id, c.U, ds); err != nil {
			t.Fatalf("honest proof %d rejected: %v", i, err)
		}
	}
}

func TestRobustnessProofSoundness(t *testing.T) {
	pkg := thresholdFixture(t, 2, 3)
	p := pkg.Params()
	id := "dave@example.com"
	keyShares := issueShares(t, pkg, id)
	msg := bytes.Repeat([]byte{5}, msgLen)
	c, _ := p.Public.EncryptBasic(rand.Reader, id, msg)

	ds, _ := p.ComputeShareWithProof(rand.Reader, keyShares[0], c.U)

	// Corrupted share value with intact proof must fail.
	badShare := &DecryptionShare{Index: ds.Index, G: ds.G.Mul(ds.G), Proof: ds.Proof}
	if err := p.VerifyShareProof(id, c.U, badShare); !errors.Is(err, ErrProofInvalid) {
		t.Fatalf("forged share value accepted: %v", err)
	}
	// Proof from one player claimed by another index must fail.
	wrongIdx := &DecryptionShare{Index: 2, G: ds.G, Proof: ds.Proof}
	if err := p.VerifyShareProof(id, c.U, wrongIdx); !errors.Is(err, ErrProofInvalid) {
		t.Fatalf("reindexed proof accepted: %v", err)
	}
	// Missing proof.
	if err := p.VerifyShareProof(id, c.U, &DecryptionShare{Index: 1, G: ds.G}); !errors.Is(err, ErrProofInvalid) {
		t.Fatalf("missing proof accepted: %v", err)
	}
	// Proof for a different ciphertext (different U) must fail.
	c2, _ := p.Public.EncryptBasic(rand.Reader, id, msg)
	if err := p.VerifyShareProof(id, c2.U, ds); !errors.Is(err, ErrProofInvalid) {
		t.Fatalf("proof transplanted to another ciphertext accepted: %v", err)
	}
}

func TestRobustDecryptRejectsByzantinePlayer(t *testing.T) {
	pkg := thresholdFixture(t, 3, 5)
	p := pkg.Params()
	id := "eve-target@example.com"
	keyShares := issueShares(t, pkg, id)
	msg := bytes.Repeat([]byte{0x77}, msgLen)
	c, _ := p.Public.EncryptBasic(rand.Reader, id, msg)

	var shares []*DecryptionShare
	for _, i := range []int{1, 2, 3, 4} {
		ds, err := p.ComputeShareWithProof(rand.Reader, keyShares[i-1], c.U)
		if err != nil {
			t.Fatal(err)
		}
		shares = append(shares, ds)
	}
	// Player 2 lies about its share (keeps its old proof).
	shares[1] = &DecryptionShare{Index: 2, G: shares[1].G.Mul(shares[1].G), Proof: shares[1].Proof}

	got, rejected, err := p.RobustDecrypt(id, shares, c)
	if err != nil {
		t.Fatal(err)
	}
	if len(rejected) != 1 || rejected[0] != 2 {
		t.Fatalf("rejected = %v, want [2]", rejected)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("robust decryption produced wrong plaintext")
	}
}

func TestRobustDecryptFailsBelowThreshold(t *testing.T) {
	pkg := thresholdFixture(t, 3, 5)
	p := pkg.Params()
	id := "x@x"
	keyShares := issueShares(t, pkg, id)
	msg := bytes.Repeat([]byte{1}, msgLen)
	c, _ := p.Public.EncryptBasic(rand.Reader, id, msg)

	var shares []*DecryptionShare
	for _, i := range []int{1, 2, 3} {
		ds, _ := p.ComputeShareWithProof(rand.Reader, keyShares[i-1], c.U)
		shares = append(shares, ds)
	}
	shares[0].G = shares[0].G.Mul(shares[0].G) // now only 2 valid
	if _, _, err := p.RobustDecrypt(id, shares, c); !errors.Is(err, ErrNotEnoughValidShares) {
		t.Fatalf("robust decrypt below threshold succeeded: %v", err)
	}
}

func TestRecoverShare(t *testing.T) {
	// Recover dishonest player 2's decryption share from players {1, 3, 4}
	// and use it in a recombination.
	pkg := thresholdFixture(t, 3, 5)
	p := pkg.Params()
	id := "frank@example.com"
	keyShares := issueShares(t, pkg, id)
	msg := bytes.Repeat([]byte{0x3C}, msgLen)
	c, _ := p.Public.EncryptBasic(rand.Reader, id, msg)

	honest := []*DecryptionShare{
		mustShare(t, p, keyShares[0], c.U),
		mustShare(t, p, keyShares[2], c.U),
		mustShare(t, p, keyShares[3], c.U),
	}
	recovered, err := p.RecoverShare(honest, 2)
	if err != nil {
		t.Fatal(err)
	}
	direct := mustShare(t, p, keyShares[1], c.U)
	if !recovered.G.Equal(direct.G) {
		t.Fatal("recovered share differs from the player's true share")
	}
	// The recovered share recombines correctly with others.
	got, err := p.Recombine([]*DecryptionShare{honest[0], honest[1], recovered}, c)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("recombination with recovered share failed")
	}
}

func TestRecoverShareErrors(t *testing.T) {
	pkg := thresholdFixture(t, 3, 5)
	p := pkg.Params()
	id := "x@x"
	keyShares := issueShares(t, pkg, id)
	msg := bytes.Repeat([]byte{1}, msgLen)
	c, _ := p.Public.EncryptBasic(rand.Reader, id, msg)
	shares := []*DecryptionShare{
		mustShare(t, p, keyShares[0], c.U),
		mustShare(t, p, keyShares[1], c.U),
		mustShare(t, p, keyShares[2], c.U),
	}
	if _, err := p.RecoverShare(shares[:2], 4); !errors.Is(err, ErrNotEnoughValidShares) {
		t.Fatalf("recovery from t−1 shares: %v", err)
	}
	if _, err := p.RecoverShare(shares, 2); err == nil {
		t.Fatal("recovering an already-present share accepted")
	}
}

func TestDuplicateDecryptionShares(t *testing.T) {
	pkg := thresholdFixture(t, 2, 3)
	p := pkg.Params()
	id := "x@x"
	keyShares := issueShares(t, pkg, id)
	msg := bytes.Repeat([]byte{1}, msgLen)
	c, _ := p.Public.EncryptBasic(rand.Reader, id, msg)
	s := mustShare(t, p, keyShares[0], c.U)
	if _, err := p.Recombine([]*DecryptionShare{s, s}, c); err == nil {
		t.Fatal("duplicate shares recombined")
	}
}

func TestExtractShareIndexValidation(t *testing.T) {
	pkg := thresholdFixture(t, 2, 3)
	if _, err := pkg.ExtractShare("x@x", 0); err == nil {
		t.Error("index 0 accepted")
	}
	if _, err := pkg.ExtractShare("x@x", 4); err == nil {
		t.Error("index n+1 accepted")
	}
}

func TestThresholdOneOfOne(t *testing.T) {
	// (1,1) degenerates to plain BasicIdent.
	pkg := thresholdFixture(t, 1, 1)
	p := pkg.Params()
	id := "solo@x"
	ks, _ := pkg.ExtractShare(id, 1)
	if err := p.VerifyKeyShare(ks); err != nil {
		t.Fatal(err)
	}
	msg := bytes.Repeat([]byte{0xF0}, msgLen)
	c, _ := p.Public.EncryptBasic(rand.Reader, id, msg)
	got, err := p.Recombine([]*DecryptionShare{mustShare(t, p, ks, c.U)}, c)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("(1,1) threshold decryption failed")
	}
}

package sem

import (
	"errors"
	"testing"

	"repro/internal/core"
)

// TestClientCloseIdempotent covers the pool-facing close contract: Close is
// idempotent, and every op after Close reports ErrClientClosed instead of a
// raw net error.
func TestClientCloseIdempotent(t *testing.T) {
	f := newFixture(t)
	c := f.client
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("second Close not idempotent: %v", err)
	}
	if err := c.Ping(); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("Ping after Close = %v, want ErrClientClosed", err)
	}
	if _, err := c.IBEToken(testID, f.pp.Generator()); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("IBEToken after Close = %v, want ErrClientClosed", err)
	}
	if _, _, err := c.batchCall(OpIBEToken, []string{testID}, [][]byte{f.pp.Generator().Marshal()}); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("batchCall after Close = %v, want ErrClientClosed", err)
	}
}

// TestRemoteErrorClassification checks the failover predicate the sharded
// router keys on: every server-answered error matches ErrRemote (failover
// would only repeat it elsewhere), while the typed sentinels keep matching
// too, and transport-level errors do not match ErrRemote.
func TestRemoteErrorClassification(t *testing.T) {
	f := newFixture(t)
	c := f.client

	if err := c.Revoke(testID, "test"); err != nil {
		t.Fatal(err)
	}
	_, err := c.IBEToken(testID, f.pp.Generator())
	if !errors.Is(err, ErrRemote) {
		t.Fatalf("revoked error %v does not match ErrRemote", err)
	}
	if !errors.Is(err, core.ErrRevoked) {
		t.Fatalf("revoked error %v lost its typed sentinel", err)
	}
	if err := c.Unrevoke(testID); err != nil {
		t.Fatal(err)
	}

	_, err = c.IBEToken("nobody@example.com", f.pp.Generator())
	if !errors.Is(err, ErrRemote) || !errors.Is(err, core.ErrUnknownIdentity) {
		t.Fatalf("unknown-identity error %v must match both ErrRemote and ErrUnknownIdentity", err)
	}

	// A malformed payload draws a bad-request refusal: remote, but no typed
	// sentinel.
	_, err = c.roundTrip(&Request{Op: OpIBEToken, ID: testID, Payload: []byte("not a point")})
	if !errors.Is(err, ErrRemote) {
		t.Fatalf("bad-request error %v does not match ErrRemote", err)
	}
	if errors.Is(err, core.ErrRevoked) || errors.Is(err, core.ErrUnknownIdentity) {
		t.Fatalf("bad-request error %v must not match a typed sentinel", err)
	}

	// Transport failure: server torn down under the client. Must NOT match
	// ErrRemote (this is exactly the case the router fails over on) and, as
	// the close was not ours, must not be ErrClientClosed either.
	_ = f.server.Close()
	if err := c.Ping(); err == nil || errors.Is(err, ErrRemote) || errors.Is(err, ErrClientClosed) {
		t.Fatalf("transport error %v misclassified", err)
	}
}

// Package shamir implements (t, n) Shamir secret sharing over the scalar
// field F_q, as used by the paper's threshold IBE (Section 3): the PKG's
// master key s is shared through a random degree t−1 polynomial
//
//	f(x) = s + a₁x + … + a_{t−1}x^{t−1}
//
// with player i holding f(i). The package also produces the public
// verification vector {f(i)·P} that lets players check
// Σ λ_i·P_pub^(i) = P_pub for any t-subset before accepting their shares.
//
//cryptolint:vartime (big.Int secret sharing over F_q; dealing and reconstruction are offline operations)
package shamir

import (
	"errors"
	"fmt"
	"io"
	"math/big"

	"repro/internal/curve"
	"repro/internal/mathx"
)

var (
	// ErrThreshold is returned when the (t, n) configuration is invalid.
	ErrThreshold = errors.New("shamir: invalid threshold configuration")

	// ErrNotEnoughShares is returned when fewer than t shares are supplied
	// to a reconstruction.
	ErrNotEnoughShares = errors.New("shamir: not enough shares")

	// ErrDuplicateShare is returned when two shares carry the same index.
	ErrDuplicateShare = errors.New("shamir: duplicate share index")
)

// Share is one evaluation point (x = Index, y = Value) of the sharing
// polynomial.
//
//cryptolint:secret
type Share struct {
	Index int      // player index, 1-based
	Value *big.Int // f(Index) mod q
}

// Polynomial is a sharing polynomial over F_q. The constant term is the
// shared secret. It is kept by the dealer only.
//
//cryptolint:secret
type Polynomial struct {
	q      *big.Int   //cryptolint:public (the field modulus)
	coeffs []*big.Int // coeffs[0] = secret
}

// NewPolynomial samples a random polynomial of degree t−1 with the given
// constant term (the secret) over F_q.
func NewPolynomial(rng io.Reader, secret, q *big.Int, t int) (*Polynomial, error) {
	if t < 1 {
		return nil, fmt.Errorf("%w: t = %d", ErrThreshold, t)
	}
	coeffs := make([]*big.Int, t)
	coeffs[0] = new(big.Int).Mod(secret, q)
	for i := 1; i < t; i++ {
		c, err := mathx.RandomInRange(rng, big.NewInt(0), q)
		if err != nil {
			return nil, fmt.Errorf("sample coefficient: %w", err)
		}
		coeffs[i] = c
	}
	return &Polynomial{q: new(big.Int).Set(q), coeffs: coeffs}, nil
}

// Threshold returns t, the number of shares needed for reconstruction.
func (p *Polynomial) Threshold() int { return len(p.coeffs) }

// Secret returns a copy of the constant term.
func (p *Polynomial) Secret() *big.Int { return new(big.Int).Set(p.coeffs[0]) }

// Eval returns f(x) mod q (Horner's rule).
func (p *Polynomial) Eval(x *big.Int) *big.Int {
	return p.evalInto(new(big.Int), x, new(big.Int), new(big.Int))
}

// evalInto is Eval with caller-owned storage: the Horner accumulator lands
// in dst, intermediate products in tmp, and the reduction quotient in quo,
// so a loop issuing many evaluations (IssueShares, VerificationVector)
// allocates nothing per step. The tmp/dst split matters — Mul with an
// aliased receiver falls off math/big's fast path and allocates a fresh
// limb array — and QuoRem is used instead of Mod because Mod hides a
// freshly allocated quotient on every call.
func (p *Polynomial) evalInto(dst, x, tmp, quo *big.Int) *big.Int {
	dst.SetInt64(0)
	for i := len(p.coeffs) - 1; i >= 0; i-- {
		tmp.Mul(dst, x)
		tmp.Add(tmp, p.coeffs[i])
		quo.QuoRem(tmp, p.q, dst) // dst = tmp mod q (tmp ≥ 0)
	}
	return dst
}

// IssueShares evaluates the polynomial at x = 1..n.
func (p *Polynomial) IssueShares(n int) ([]Share, error) {
	if n < p.Threshold() {
		return nil, fmt.Errorf("%w: n = %d < t = %d", ErrThreshold, n, p.Threshold())
	}
	shares := make([]Share, n)
	x, tmp, quo := new(big.Int), new(big.Int), new(big.Int)
	for i := 1; i <= n; i++ {
		x.SetInt64(int64(i))
		shares[i-1] = Share{Index: i, Value: p.evalInto(new(big.Int), x, tmp, quo)}
	}
	return shares, nil
}

// VerificationVector returns the public points {f(i)·base} for i = 1..n plus
// the commitment f(0)·base to the secret. In the threshold IBE these are the
// P_pub^(i) published by the PKG.
func (p *Polynomial) VerificationVector(base *curve.Point, n int) ([]*curve.Point, *curve.Point) {
	vec := make([]*curve.Point, n)
	x, val, tmp, quo := new(big.Int), new(big.Int), new(big.Int), new(big.Int)
	for i := 1; i <= n; i++ {
		x.SetInt64(int64(i))
		vec[i-1] = base.ScalarMul(p.evalInto(val, x, tmp, quo))
	}
	return vec, base.ScalarMul(p.coeffs[0])
}

// Reconstruct interpolates the secret f(0) from at least t shares.
func Reconstruct(shares []Share, t int, q *big.Int) (*big.Int, error) {
	return InterpolateAt(shares, t, big.NewInt(0), q)
}

// InterpolateAt interpolates f(at) from at least t shares; used for share
// recovery (computing a missing player's share from t honest ones).
func InterpolateAt(shares []Share, t int, at, q *big.Int) (*big.Int, error) {
	if len(shares) < t {
		return nil, fmt.Errorf("%w: have %d, need %d", ErrNotEnoughShares, len(shares), t)
	}
	use := shares[:t]
	xs := make([]*big.Int, t)
	seen := make(map[int]bool, t)
	for i, s := range use {
		if seen[s.Index] {
			return nil, fmt.Errorf("%w: index %d", ErrDuplicateShare, s.Index)
		}
		seen[s.Index] = true
		xs[i] = big.NewInt(int64(s.Index))
	}
	acc, term := new(big.Int), new(big.Int)
	for i, s := range use {
		li, err := mathx.LagrangeAt(i, xs, at, q)
		if err != nil {
			return nil, fmt.Errorf("lagrange coefficient %d: %w", i, err)
		}
		term.Mul(li, s.Value)
		term.Add(term, acc)
		acc.Mod(term, q)
	}
	return acc, nil
}

// VerifyVector checks the consistency condition from the paper's Setup:
// for the subset S of share indices (1-based), Σ_{i∈S} λ_i·vec[i−1] must
// equal the commitment. Any t-subset of a consistent vector passes.
func VerifyVector(vec []*curve.Point, commitment *curve.Point, subset []int, q *big.Int) error {
	xs := make([]*big.Int, len(subset))
	for i, idx := range subset {
		if idx < 1 || idx > len(vec) {
			return fmt.Errorf("shamir: subset index %d out of range 1..%d", idx, len(vec))
		}
		xs[i] = big.NewInt(int64(idx))
	}
	// Σ λ_i·vec[i−1] is one Pippenger multi-scalar sum instead of |S|
	// independent ladders.
	lis := make([]*big.Int, len(subset))
	pts := make([]*curve.Point, len(subset))
	for i, idx := range subset {
		li, err := mathx.Lagrange0(i, xs, q)
		if err != nil {
			return fmt.Errorf("lagrange coefficient: %w", err)
		}
		lis[i] = li
		pts[i] = vec[idx-1]
	}
	sum, err := commitment.Curve().MSM(lis, pts)
	if err != nil {
		return fmt.Errorf("shamir: aggregate verification vector: %w", err)
	}
	if !sum.Equal(commitment) {
		return errors.New("shamir: verification vector inconsistent with commitment")
	}
	return nil
}

// PointShare is a share whose value is a curve point (used for identity-key
// shares d_IDi = f(i)·Q_ID in the threshold IBE).
type PointShare struct {
	Index int
	Value *curve.Point
}

// ReconstructPoint interpolates Σ λ_i·S_i at x = 0 in the exponent,
// recovering f(0)·Q from point shares f(i)·Q.
func ReconstructPoint(shares []PointShare, t int, q *big.Int) (*curve.Point, error) {
	return InterpolatePointAt(shares, t, big.NewInt(0), q)
}

// InterpolatePointAt interpolates f(at)·Q from point shares.
func InterpolatePointAt(shares []PointShare, t int, at, q *big.Int) (*curve.Point, error) {
	if len(shares) < t {
		return nil, fmt.Errorf("%w: have %d, need %d", ErrNotEnoughShares, len(shares), t)
	}
	use := shares[:t]
	xs := make([]*big.Int, t)
	seen := make(map[int]bool, t)
	for i, s := range use {
		if seen[s.Index] {
			return nil, fmt.Errorf("%w: index %d", ErrDuplicateShare, s.Index)
		}
		seen[s.Index] = true
		xs[i] = big.NewInt(int64(s.Index))
	}
	// Σ λ_i·S_i as one multi-scalar sum.
	lis := make([]*big.Int, t)
	pts := make([]*curve.Point, t)
	for i, s := range use {
		li, err := mathx.LagrangeAt(i, xs, at, q)
		if err != nil {
			return nil, fmt.Errorf("lagrange coefficient %d: %w", i, err)
		}
		lis[i] = li
		pts[i] = s.Value
	}
	return use[0].Value.Curve().MSM(lis, pts)
}

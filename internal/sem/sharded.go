package sem

import (
	"errors"
	"fmt"
	"math/big"
	"sync/atomic"

	"repro/internal/bf"
	"repro/internal/bls"
	"repro/internal/core"
	"repro/internal/curve"
	"repro/internal/mrsa"
	"repro/internal/obs"
	"repro/internal/pairing"
	"repro/internal/parallel"
	"repro/internal/repl"
	"repro/internal/shard"
	"repro/internal/wire"
)

// ShardedClient routes SEM traffic across a fleet of shards. Identities map
// to shards by consistent hashing (stable under fleet growth), each shard is
// served by a multiplexed Pool, and per-identity ops fail over to the next
// ring replica when a shard dies mid-request. Batches split shard-aware: one
// sub-batch per owning shard, fanned in parallel, merged back in input order.
//
// Replica failover assumes the identity's key half is enrolled on every
// replica (Register* methods do exactly that), and that revocations reach
// every shard (Revoke/Unrevoke broadcast). Transport errors trigger
// failover; errors the server answered (ErrRemote) never do — a revoked
// identity stays revoked on the next replica too.
type ShardedClient struct {
	pp    *pairing.Params
	ring  *shard.Ring
	pools map[string]*Pool
	addrs []string
	reps  int
	met   *shardedMetrics

	closed atomic.Bool
}

// ShardedConfig tunes a ShardedClient.
type ShardedConfig struct {
	// Replicas is how many ring replicas serve each identity (primary
	// first); ops fail over down this list on transport errors. ≤ 0
	// selects 1 (no failover).
	Replicas int
	// VirtualNodes tunes ring smoothness; ≤ 0 selects the shard package
	// default.
	VirtualNodes int
	// Pool tunes every per-shard pool. Pool.Metrics is overridden by
	// Metrics below.
	Pool PoolConfig
	// Metrics, when set, instruments the ring (shard_ring_*), the fleet's
	// pools (sempool_*, aggregated across shards) and the sharded client
	// itself (shardclient_*).
	Metrics *obs.Registry
}

type shardedMetrics struct {
	failovers    *obs.Counter
	shardBatches *obs.Counter
	broadcasts   *obs.Counter
	hintFailures *obs.Counter
	leaderProbes *obs.Counter
}

func newShardedMetrics(reg *obs.Registry) *shardedMetrics {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &shardedMetrics{
		failovers:    reg.Counter("shardclient_failovers_total", "per-identity ops retried on the next ring replica after a transport failure"),
		shardBatches: reg.Counter("shardclient_shard_batches_total", "per-shard sub-batches dispatched by sharded batch splitting"),
		broadcasts:   reg.Counter("shardclient_broadcasts_total", "fleet-wide broadcast ops (revoke/unrevoke)"),
		hintFailures: reg.Counter("shardclient_hint_failures_total", "best-effort revocation hints that failed (replication still carries the mutation)"),
		leaderProbes: reg.Counter("shardclient_leader_probes_total", "repl.status probes issued to locate the actual leader after the ring-designated shard refused a mutation"),
	}
}

// NewShardedClient builds a client over the given shard addresses. No
// connection is dialed until the first operation. pp may be nil when only
// RSA/admin ops will be used.
func NewShardedClient(addrs []string, pp *pairing.Params, cfg ShardedConfig) (*ShardedClient, error) {
	ring, err := shard.New(addrs, cfg.VirtualNodes)
	if err != nil {
		return nil, err
	}
	if cfg.Metrics != nil {
		ring.Instrument(cfg.Metrics)
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 1
	}
	if cfg.Replicas > ring.Len() {
		cfg.Replicas = ring.Len()
	}
	poolCfg := cfg.Pool
	poolCfg.Metrics = cfg.Metrics
	sc := &ShardedClient{
		pp:    pp,
		ring:  ring,
		pools: make(map[string]*Pool, len(addrs)),
		addrs: ring.Nodes(),
		reps:  cfg.Replicas,
		met:   newShardedMetrics(cfg.Metrics),
	}
	for _, addr := range sc.addrs {
		sc.pools[addr] = NewPool(addr, pp, poolCfg) //cryptolint:public (shard addresses are deployment metadata, not key material)
	}
	return sc, nil
}

// Ring exposes the routing ring (read-only use: Lookup/Distribution).
func (sc *ShardedClient) Ring() *shard.Ring { return sc.ring }

// Addrs reports the fleet's shard addresses (sorted, deduplicated).
func (sc *ShardedClient) Addrs() []string {
	return append([]string(nil), sc.addrs...)
}

// Close tears down every shard pool. Idempotent.
func (sc *ShardedClient) Close() error {
	if sc.closed.Swap(true) {
		return nil
	}
	for _, p := range sc.pools {
		_ = p.Close()
	}
	return nil
}

// replicasFor returns the ring replica addresses serving id, primary first.
func (sc *ShardedClient) replicasFor(dst []string, id string) []string {
	return sc.ring.Replicas(dst, id, sc.reps)
}

// callReplicated runs one per-identity op against the identity's primary
// shard, failing over down the replica list on transport errors. Errors the
// server answered (ErrRemote) and our own close (ErrClientClosed) return
// immediately — retrying those elsewhere is useless or wrong.
func (sc *ShardedClient) callReplicated(op Op, id string, payload []byte) ([]byte, error) {
	if sc.closed.Load() {
		return nil, ErrClientClosed
	}
	var scratch [4]string
	reps := sc.replicasFor(scratch[:0], id)
	var lastErr error
	for i, addr := range reps {
		if i > 0 {
			sc.met.failovers.Inc()
		}
		raw, err := sc.pools[addr].single(op, id, payload) //cryptolint:public (replica-walk routing on shard addresses; deployment metadata)
		if err == nil {
			return raw, nil
		}
		if errors.Is(err, ErrRemote) || errors.Is(err, ErrClientClosed) {
			return nil, err
		}
		lastErr = err
	}
	return nil, fmt.Errorf("sem: all %d replicas for %q failed: %w", len(reps), id, lastErr) //cryptolint:public (identities are public protocol metadata, not key material)
}

// batchCall is the ShardedClient's raw transport (the batchCaller
// contract): split the items by owning shard, fan one sub-batch per shard
// in parallel, and on shard failure retry the voided slots on each item's
// next ring replica. Register ops instead broadcast every item to its full
// replica set (enrollment must land everywhere failover can read from).
// Results and errs come back in input order.
func (sc *ShardedClient) batchCall(op Op, ids []string, payloads [][]byte) ([][]byte, []error, error) {
	if len(ids) != len(payloads) {
		return nil, nil, fmt.Errorf("sem: batch has %d ids but %d payloads", len(ids), len(payloads))
	}
	if sc.closed.Load() {
		return nil, nil, ErrClientClosed
	}
	results := make([][]byte, len(ids))
	errs := make([]error, len(ids))
	if len(ids) == 0 {
		return results, errs, nil
	}
	if op == OpRegisterIBE || op == OpRegisterGDH {
		err := sc.broadcastRegister(op, ids, payloads, errs)
		return results, errs, err
	}

	pending := make([]int, len(ids))
	for i := range pending {
		pending[i] = i
	}
	for attempt := 0; attempt < sc.reps && len(pending) > 0; attempt++ {
		if attempt > 0 {
			sc.met.failovers.Add(uint64(len(pending)))
		}
		groups, order := sc.groupByReplica(ids, pending, attempt)
		parallel.FanChunks(len(order), func(lo, hi int) {
			for g := lo; g < hi; g++ {
				sc.runShardBatch(op, order[g], groups[order[g]], ids, payloads, results, errs) //cryptolint:public (fan-out over shard-address groups; deployment metadata)
			}
		})
		// Slots that failed in transport stay pending for the next replica;
		// ok slots and server-answered errors are settled.
		next := pending[:0]
		for _, i := range pending {
			if errs[i] != nil && !errors.Is(errs[i], ErrRemote) && !errors.Is(errs[i], ErrClientClosed) {
				next = append(next, i)
			}
		}
		pending = next
	}
	var err error
	for _, i := range pending {
		if errs[i] != nil {
			err = errs[i]
			break
		}
	}
	return results, errs, err
}

// groupByReplica buckets the pending input slots by the shard serving each
// identity at the given replica attempt. Identities with fewer replicas
// than attempt keep their existing error.
func (sc *ShardedClient) groupByReplica(ids []string, pending []int, attempt int) (map[string][]int, []string) {
	groups := make(map[string][]int)
	var order []string
	var scratch [4]string
	for _, i := range pending {
		reps := sc.replicasFor(scratch[:0], ids[i])
		if attempt >= len(reps) {
			continue
		}
		addr := reps[attempt]
		if _, ok := groups[addr]; !ok { //cryptolint:public (grouping by shard address; deployment metadata)
			order = append(order, addr)
		}
		groups[addr] = append(groups[addr], i) //cryptolint:public (grouping by shard address; deployment metadata)
	}
	return groups, order
}

// runShardBatch runs one shard's sub-batch and writes its slots of the
// result arrays (disjoint across shards, so concurrent writers are safe).
func (sc *ShardedClient) runShardBatch(op Op, addr string, idxs []int, ids []string, payloads [][]byte, results [][]byte, errs []error) {
	sc.met.shardBatches.Inc()
	subIDs := make([]string, len(idxs))
	subPayloads := make([][]byte, len(idxs))
	for j, i := range idxs {
		subIDs[j] = ids[i]
		subPayloads[j] = payloads[i]
	}
	subResults, subErrs, err := sc.pools[addr].batchCall(op, subIDs, subPayloads) //cryptolint:public (pool lookup by shard address; deployment metadata)
	for j, i := range idxs {
		switch {
		case subResults == nil:
			errs[i] = err
		case subErrs[j] != nil:
			errs[i] = subErrs[j]
		default:
			errs[i] = nil
			results[i] = subResults[j]
		}
	}
}

// broadcastRegister enrolls every item on its full replica set: failover
// reads from any replica, so enrollment is complete only when all of them
// hold the key half. An item's error is its first failing replica's.
func (sc *ShardedClient) broadcastRegister(op Op, ids []string, payloads [][]byte, errs []error) error {
	// One pass per replica rank reuses the shard-batch machinery; every
	// rank must succeed for an item to be cleanly enrolled.
	all := make([]int, len(ids))
	for i := range all {
		all[i] = i
	}
	rankErrs := make([]error, len(ids))
	for attempt := 0; attempt < sc.reps; attempt++ {
		groups, order := sc.groupByReplica(ids, all, attempt)
		for i := range rankErrs {
			rankErrs[i] = nil
		}
		parallel.FanChunks(len(order), func(lo, hi int) {
			for g := lo; g < hi; g++ {
				sc.runShardBatch(op, order[g], groups[order[g]], ids, payloads, make([][]byte, len(ids)), rankErrs) //cryptolint:public (fan-out over shard-address groups; deployment metadata)
			}
		})
		for i, e := range rankErrs {
			if e != nil && errs[i] == nil {
				errs[i] = e
			}
		}
	}
	for _, e := range errs {
		if e != nil && !errors.Is(e, ErrRemote) {
			return e
		}
	}
	return nil
}

// broadcast runs one op against every shard in the fleet and returns the
// first error (all shards must accept).
func (sc *ShardedClient) broadcast(op Op, id string, payload []byte) error {
	if sc.closed.Load() {
		return ErrClientClosed
	}
	sc.met.broadcasts.Inc()
	errsByShard := make([]error, len(sc.addrs))
	parallel.Fan(len(sc.addrs), func(i int) {
		_, errsByShard[i] = sc.pools[sc.addrs[i]].single(op, id, payload) //cryptolint:public (broadcast over the shard-address list; deployment metadata)
	})
	for i, err := range errsByShard {
		if err != nil {
			return fmt.Errorf("sem: shard %s: %w", sc.addrs[i], err) //cryptolint:public (shard address in an operator-facing error; deployment metadata)
		}
	}
	return nil
}

// Ping checks liveness of every shard in the fleet.
func (sc *ShardedClient) Ping() error {
	if sc.closed.Load() {
		return ErrClientClosed
	}
	errsByShard := make([]error, len(sc.addrs))
	parallel.Fan(len(sc.addrs), func(i int) {
		errsByShard[i] = sc.pools[sc.addrs[i]].Ping() //cryptolint:public (liveness sweep over the shard-address list; deployment metadata)
	})
	for i, err := range errsByShard {
		if err != nil {
			return fmt.Errorf("sem: shard %s: %w", sc.addrs[i], err) //cryptolint:public (shard address in an operator-facing error; deployment metadata)
		}
	}
	return nil
}

// ListRevoked unions the revocation lists of every shard, deduplicated by
// identity (revocations broadcast fleet-wide, so healthy shards agree; the
// union covers shards that missed a broadcast while partitioned). Every
// shard must answer — an unreachable shard fails the query, since its
// entries could be missing from the union. Partial-list parse errors are
// tolerated per shard and surface once alongside the merged entries.
func (sc *ShardedClient) ListRevoked() ([]core.RevocationEntry, error) {
	if sc.closed.Load() {
		return nil, ErrClientClosed
	}
	lists := make([][]core.RevocationEntry, len(sc.addrs))
	errsByShard := make([]error, len(sc.addrs))
	parallel.Fan(len(sc.addrs), func(i int) {
		lists[i], errsByShard[i] = sc.pools[sc.addrs[i]].ListRevoked()
	})
	var partial error
	for i, err := range errsByShard {
		if errors.Is(err, ErrPartialList) {
			partial = err
			continue
		}
		if err != nil {
			return nil, fmt.Errorf("sem: shard %s: %w", sc.addrs[i], err)
		}
	}
	seen := make(map[string]bool)
	var merged []core.RevocationEntry
	for _, list := range lists {
		for _, e := range list {
			if !seen[e.ID] {
				seen[e.ID] = true
				merged = append(merged, e)
			}
		}
	}
	return merged, partial
}

// IBEToken requests ê(U, d_ID,sem) from the identity's shard (with replica
// failover).
func (sc *ShardedClient) IBEToken(id string, u *curve.Point) (*pairing.GT, error) {
	if sc.pp == nil {
		return nil, errors.New("sem: sharded client has no pairing params")
	}
	raw, err := sc.callReplicated(OpIBEToken, id, u.Marshal())
	if err != nil {
		return nil, err
	}
	return wire.UnmarshalGT(sc.pp, raw)
}

// GDHHalfSign requests S_sem = x_sem·h from the identity's shard.
func (sc *ShardedClient) GDHHalfSign(id string, h *curve.Point) (*curve.Point, error) {
	if sc.pp == nil {
		return nil, errors.New("sem: sharded client has no pairing params")
	}
	raw, err := sc.callReplicated(OpGDHSign, id, h.Marshal())
	if err != nil {
		return nil, err
	}
	return wire.UnmarshalG1(sc.pp.Curve(), raw)
}

// RSAHalfDecrypt requests c^{d_sem} mod n from the identity's shard.
func (sc *ShardedClient) RSAHalfDecrypt(pub *mrsa.PublicKey, id string, ciphertext *big.Int) (*big.Int, error) {
	raw, err := sc.callReplicated(OpRSADecrypt, id, ciphertext.Bytes()) //cryptolint:public (sanctioned wire serialization edge; the ciphertext is on the wire by design)
	if err != nil {
		return nil, err
	}
	return wire.UnmarshalScalar(raw, pub.N)
}

// DecryptIBE runs the user side of mediated-IBE decryption against the
// fleet: request token from the owning shard, pair the user half, open.
func (sc *ShardedClient) DecryptIBE(pub *bf.PublicParams, key *core.UserKeyHalf, ct *bf.Ciphertext) ([]byte, error) {
	token, err := sc.IBEToken(key.ID, ct.U)
	if err != nil {
		return nil, err
	}
	return core.UserDecrypt(pub, key, ct, token)
}

// SignGDH runs the user side of mediated-GDH signing against the fleet.
func (sc *ShardedClient) SignGDH(key *core.GDHUserKey, msg []byte) (*curve.Point, error) {
	h, err := bls.HashMessage(key.Public.Pairing, msg)
	if err != nil {
		return nil, err
	}
	semHalf, err := sc.GDHHalfSign(key.ID, h)
	if err != nil {
		return nil, err
	}
	return core.UserSign(key, msg, semHalf)
}

// Revoke disables an identity fleet-wide. The mutation lands
// authoritatively on the fleet's leader shard (shard.Ring.Leader — in a
// replicated fleet that daemon sequences it, makes it durable and streams
// it to every follower), then fans to the remaining shards as a
// best-effort hint so even non-replicated fleets converge before the call
// returns. A hint miss — a shard down at that moment — is counted, not
// fatal: the leader owns the truth and catch-up replication delivers the
// mutation when the shard returns. This replaces the pre-replication
// broadcast, whose guarantee evaporated exactly when a shard was down.
func (sc *ShardedClient) Revoke(id, reason string) error {
	return sc.leaderMutate(OpRevoke, id, []byte(reason))
}

// Unrevoke restores an identity fleet-wide (leader-routed, like Revoke).
func (sc *ShardedClient) Unrevoke(id string) error {
	return sc.leaderMutate(OpUnrevoke, id, nil)
}

// LeaderAddr reports the shard the ring *designates* as the fleet's
// revocation write path — where cmd/semd's -repl-leader should run. Note
// the rebalance hazard documented on shard.Ring.Leader: after the fleet
// list changes, this designation can differ from the daemon actually
// running as leader. Mutations recover via repl.status probing
// (leaderMutate); operators should realign -repl-leader at the next
// restart.
func (sc *ShardedClient) LeaderAddr() string { return sc.ring.Leader() }

// probeLeader asks every shard except skip for its replication status and
// returns the first daemon reporting itself as the fleet's active leader,
// or "" when none does.
func (sc *ShardedClient) probeLeader(skip string) string {
	for _, addr := range sc.addrs {
		if addr == skip { //cryptolint:public (skip-the-refuser comparison on shard addresses; deployment metadata)
			continue
		}
		sc.met.leaderProbes.Inc()
		raw, err := sc.pools[addr].single(OpReplStatus, "", nil) //cryptolint:public (leader probe over shard addresses; deployment metadata)
		if err != nil {
			continue // down or replication-less shards simply aren't the leader
		}
		st, err := wire.ParseReplStatus(raw)
		if err != nil || !st.Leader {
			continue
		}
		return addr
	}
	return ""
}

// leaderMutate performs a revocation mutation: authoritative write on the
// ring's leader shard (the call fails if the leader does), then a
// synchronous best-effort hint to every other shard. When the
// ring-designated shard refuses with not_leader — a rebalance moved the
// designation onto a daemon running as a follower (see shard.Ring.Leader)
// — the fleet is probed for the daemon actually leading and the mutation
// retried there, so authoritative writes survive fleet-list drift instead
// of failing until an operator restart.
func (sc *ShardedClient) leaderMutate(op Op, id string, payload []byte) error {
	if sc.closed.Load() {
		return ErrClientClosed
	}
	leader := sc.ring.Leader()
	_, err := sc.pools[leader].single(op, id, payload) //cryptolint:public (leader routing on shard addresses; deployment metadata)
	if err != nil && errors.Is(err, repl.ErrNotLeader) {
		if actual := sc.probeLeader(leader); actual != "" {
			if _, perr := sc.pools[actual].single(op, id, payload); perr == nil { //cryptolint:public (probed-leader routing on shard addresses; deployment metadata)
				leader, err = actual, nil
			} else {
				err = perr
			}
		}
	}
	if err != nil {
		return fmt.Errorf("sem: leader shard %s: %w", leader, err) //cryptolint:public (shard address in an operator-facing error; deployment metadata)
	}
	sc.met.broadcasts.Inc()
	parallel.Fan(len(sc.addrs), func(i int) {
		addr := sc.addrs[i]
		if addr == leader { //cryptolint:public (skip-the-leader comparison on shard addresses; deployment metadata)
			return
		}
		if _, err := sc.pools[addr].single(op, id, payload); err != nil { //cryptolint:public (hint fan-out over shard addresses; deployment metadata)
			// A replicated follower refuses direct mutations by design
			// (repl.ErrNotLeader) — the leader's stream is already carrying
			// this record there, so that refusal is not a lost hint.
			if !errors.Is(err, repl.ErrNotLeader) {
				sc.met.hintFailures.Inc()
			}
		}
	})
	return nil
}

// Status reports whether an identity is revoked, read from its primary
// shard (with replica failover).
func (sc *ShardedClient) Status(id string) (bool, error) {
	raw, err := sc.callReplicated(OpStatus, id, nil)
	if err != nil {
		return false, err
	}
	return len(raw) == 1 && raw[0] == 1, nil //cryptolint:public (one-byte revocation status straight off the wire)
}

// RegisterIBE enrolls an SEM IBE key half on every replica serving id.
func (sc *ShardedClient) RegisterIBE(id string, d *curve.Point) error {
	errs, err := sc.RegisterIBEBatch([]string{id}, []*curve.Point{d})
	if err != nil {
		return err
	}
	return errs[0]
}

// RegisterGDH enrolls an SEM GDH scalar half on every replica serving id.
func (sc *ShardedClient) RegisterGDH(id string, x *big.Int) error {
	errs, err := sc.RegisterGDHBatch([]string{id}, []*big.Int{x})
	if err != nil {
		return err
	}
	return errs[0]
}

// TokenBatch requests k tokens, shard-split (see Client.TokenBatch for the
// result contract).
func (sc *ShardedClient) TokenBatch(ids []string, us []*curve.Point) ([]*pairing.GT, []error, error) {
	return tokenBatch(sc, sc.pp, ids, us)
}

// GDHHalfSignBatch requests k half-signatures, shard-split.
func (sc *ShardedClient) GDHHalfSignBatch(ids []string, hs []*curve.Point) ([]*curve.Point, []error, error) {
	return gdhHalfSignBatch(sc, sc.pp, ids, hs)
}

// RSAHalfDecryptBatch requests k half-decryptions, shard-split.
func (sc *ShardedClient) RSAHalfDecryptBatch(pub *mrsa.PublicKey, ids []string, cts []*big.Int) ([]*big.Int, []error, error) {
	return rsaHalfDecryptBatch(sc, pub, ids, cts)
}

// RegisterIBEBatch bulk-enrolls SEM IBE halves across the fleet (every
// replica of every id).
func (sc *ShardedClient) RegisterIBEBatch(ids []string, ds []*curve.Point) ([]error, error) {
	return registerIBEBatch(sc, ids, ds)
}

// RegisterGDHBatch bulk-enrolls SEM GDH halves across the fleet.
func (sc *ShardedClient) RegisterGDHBatch(ids []string, xs []*big.Int) ([]error, error) {
	return registerGDHBatch(sc, ids, xs)
}

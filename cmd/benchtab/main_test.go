package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/bench"
)

func TestBenchtabQuickSubset(t *testing.T) {
	var out bytes.Buffer
	// T1 + T4 + F1 at toy parameters keeps the test fast while covering a
	// size table, an attack run and a simulation sweep.
	if err := run([]string{"-exp", "t1,t4,f1", "-params", "toy", "-quick"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"== T1", "== T4", "== F1", "SYSTEM BROKEN", "contained", "sem"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestBenchtabF2Quick(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "f2", "-params", "toy", "-quick"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "== F2") {
		t.Errorf("missing F2 table:\n%s", out.String())
	}
}

// writeSnapshot measures a quick toy-parameter baseline, rescales every
// entry by factor, and writes it to a temp file — a synthetic "committed"
// reference for the -check path.
func writeSnapshot(t *testing.T, factor float64) string {
	t.Helper()
	var buf bytes.Buffer
	if err := run([]string{"-baseline", "-", "-params", "toy", "-quick"}, &buf); err != nil {
		t.Fatal(err)
	}
	var report bench.BaselineReport
	if err := json.Unmarshal(buf.Bytes(), &report); err != nil {
		t.Fatal(err)
	}
	for i := range report.Entries {
		report.Entries[i].NsPerOp *= factor
	}
	body, err := report.JSON()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "snapshot.json")
	if err := os.WriteFile(path, body, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestBenchtabCheckFailsOnRegression(t *testing.T) {
	// A reference 1000× faster than the machine can possibly run makes the
	// fresh measurement an unambiguous "regression".
	path := writeSnapshot(t, 1.0/1000)
	var out bytes.Buffer
	err := run([]string{"-check", path, "-params", "toy", "-quick"}, &out)
	if err == nil {
		t.Fatalf("doctored snapshot passed:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Fatalf("no regression lines printed:\n%s", out.String())
	}
}

func TestBenchtabCheckPassesWithGenerousTolerance(t *testing.T) {
	// A reference 1000× slower than reality cannot regress at any tolerance.
	path := writeSnapshot(t, 1000)
	var out bytes.Buffer
	if err := run([]string{"-check", path, "-params", "toy", "-quick"}, &out); err != nil {
		t.Fatalf("check failed against a generous snapshot: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "all entries within") {
		t.Fatalf("missing pass summary:\n%s", out.String())
	}
}

func TestBenchtabCheckGuardsParamsMismatch(t *testing.T) {
	path := writeSnapshot(t, 1) // snapshot taken at toy parameters
	var out bytes.Buffer
	if err := run([]string{"-check", path, "-params", "fast", "-quick"}, &out); err == nil {
		t.Fatal("cross-parameter check accepted")
	}
}

func TestBenchtabCheckMissingFile(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-check", "/nonexistent.json", "-params", "toy", "-quick"}, &out); err == nil {
		t.Fatal("missing snapshot accepted")
	}
}

func TestBenchtabUnknownParams(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-params", "bogus"}, &out); err == nil {
		t.Fatal("unknown parameter set accepted")
	}
}

func TestBenchtabUnknownExperimentIsNoop(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "t9", "-params", "toy"}, &out); err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Fatalf("unexpected output for unknown experiment: %q", out.String())
	}
}

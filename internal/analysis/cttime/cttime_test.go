package cttime_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/cttime"
)

func TestCTTime(t *testing.T) {
	analysistest.Run(t, "testdata", cttime.Analyzer,
		"repro/internal/cttbad",
		"repro/internal/cttgood",
		"repro/internal/cttlegacy",
	)
}

package core

import (
	"bytes"
	"crypto/rand"
	"math/big"
	"testing"

	"repro/internal/curve"
	"repro/internal/dkg"
	"repro/internal/pairing"
)

// TestThresholdIBEWithoutTrustedDealer runs the full Section 3 flow on top
// of a distributed key generation: no party ever holds the master key, yet
// share verification, robust decryption and share recovery all work
// unchanged.
func TestThresholdIBEWithoutTrustedDealer(t *testing.T) {
	pp, err := pairing.Toy()
	if err != nil {
		t.Fatal(err)
	}
	const (
		tt = 3
		n  = 5
	)
	result, scalars, err := dkg.Run(rand.Reader, pp, tt, n, nil)
	if err != nil {
		t.Fatal(err)
	}
	params, err := NewThresholdParams(pp, msgLen, tt, n, result.PPub, result.VerificationKeys)
	if err != nil {
		t.Fatal(err)
	}

	id := "dealerless@example.com"
	// Each player derives its own identity-key share; the standard pairing
	// check accepts them.
	keyShares := make([]*KeyShare, n)
	for j := 1; j <= n; j++ {
		ks, err := KeyShareFromScalar(pp, id, j, scalars[j-1])
		if err != nil {
			t.Fatal(err)
		}
		if err := params.VerifyKeyShare(ks); err != nil {
			t.Fatalf("DKG-derived key share %d rejected: %v", j, err)
		}
		keyShares[j-1] = ks
	}

	msg := bytes.Repeat([]byte{0xD6}, msgLen)
	c, err := params.Public.EncryptBasic(rand.Reader, id, msg)
	if err != nil {
		t.Fatal(err)
	}

	// Robust decryption with one byzantine player.
	shares := make([]*DecryptionShare, 0, 4)
	for _, j := range []int{1, 2, 4, 5} {
		ds, err := params.ComputeShareWithProof(rand.Reader, keyShares[j-1], c.U)
		if err != nil {
			t.Fatal(err)
		}
		if j == 4 {
			ds = &DecryptionShare{Index: 4, G: ds.G.Mul(ds.G), Proof: ds.Proof}
		}
		shares = append(shares, ds)
	}
	got, rejected, err := params.RobustDecrypt(id, shares, c)
	if err != nil {
		t.Fatal(err)
	}
	if len(rejected) != 1 || rejected[0] != 4 {
		t.Fatalf("rejected = %v, want [4]", rejected)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("dealerless robust decryption produced wrong plaintext")
	}

	// Share recovery also works on DKG material.
	honest := []*DecryptionShare{
		mustShare(t, params, keyShares[0], c.U),
		mustShare(t, params, keyShares[1], c.U),
		mustShare(t, params, keyShares[4], c.U),
	}
	recovered, err := params.RecoverShare(honest, 4)
	if err != nil {
		t.Fatal(err)
	}
	truth := mustShare(t, params, keyShares[3], c.U)
	if !recovered.G.Equal(truth.G) {
		t.Fatal("recovered share mismatch on DKG material")
	}
}

func TestNewThresholdParamsValidation(t *testing.T) {
	pp, _ := pairing.Toy()
	result, _, err := dkg.Run(rand.Reader, pp, 2, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewThresholdParams(pp, msgLen, 0, 3, result.PPub, result.VerificationKeys); err == nil {
		t.Error("t=0 accepted")
	}
	if _, err := NewThresholdParams(pp, msgLen, 2, 4, result.PPub, result.VerificationKeys); err == nil {
		t.Error("vks/n mismatch accepted")
	}
	if _, err := NewThresholdParams(pp, 0, 2, 3, result.PPub, result.VerificationKeys); err == nil {
		t.Error("msgLen=0 accepted")
	}
	// Inconsistent material: corrupt the first verification key. The
	// assembly-time VerifySetup must reject it.
	bad := append([]*curve.Point(nil), result.VerificationKeys...)
	bad[0] = bad[0].Double()
	if _, err := NewThresholdParams(pp, msgLen, 2, 3, result.PPub, bad); err == nil {
		t.Error("inconsistent DKG output accepted")
	}
	// KeyShareFromScalar sanity: wrong scalar fails the pairing check.
	good, err := NewThresholdParams(pp, msgLen, 2, 3, result.PPub, result.VerificationKeys)
	if err != nil {
		t.Fatal(err)
	}
	ks, err := KeyShareFromScalar(pp, "x@x", 1, big.NewInt(42))
	if err != nil {
		t.Fatal(err)
	}
	if err := good.VerifyKeyShare(ks); err == nil {
		t.Error("key share from an arbitrary scalar accepted")
	}
}

// Package leakbad exercises the secretleak positive cases.
package leakbad

import (
	"fmt"
	"log"

	"repro/internal/keys"
)

// Dump prints the whole secret struct.
func Dump(k *keys.PrivateKey) {
	fmt.Printf("key: %v\n", k) // want `secret-bearing value passed to fmt.Printf`
}

// Trace logs the secret exponent.
func Trace(k *keys.PrivateKey) {
	log.Println("d =", k.D) // want `secret-bearing value passed to log.Println`
}

// Wrap folds key material into an error message.
func Wrap(k *keys.PrivateKey) error {
	return fmt.Errorf("rejected key %x", k.Material()) // want `secret-bearing value passed to fmt.Errorf`
}

// halves splits the secret; both results inherit its taint.
func halves(k *keys.PrivateKey) ([]byte, []byte) {
	n := len(k.Bytes) / 2
	return k.Bytes[:n], k.Bytes[n:]
}

// TraceDerived logs material that flowed through a local and a helper
// return — invisible to a structural check, tracked by the taint layer.
func TraceDerived(k *keys.PrivateKey) {
	lo, _ := halves(k)
	log.Printf("low half %x", lo) // want `secret-bearing value passed to log.Printf`
}

// Package hotgood exercises the allocfree negative cases: the unmarked
// twin of every hotbad construct, and a marked kernel written in the
// slab-indexing style the rule wants.
package hotgood

import "fmt"

type point struct{ x, y uint64 }

// Report is not marked //cryptolint:hotpath; nothing in it is checked.
func Report(xs []uint64) []string {
	var out []string
	for i, x := range xs {
		out = append(out, fmt.Sprintf("%d: %d", i, x))
	}
	return out
}

// Sum is marked hot and stays allocation-free: value struct literals,
// indexed writes into a caller-sized slab, no boxing.
//
//cryptolint:hotpath
func Sum(dst []point, xs, ys []uint64) {
	for i := range dst {
		dst[i] = point{xs[i], ys[i]}
	}
}

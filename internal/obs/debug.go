package obs

import (
	"net"
	"net/http"
	"net/http/pprof"
)

// DebugMux builds the debug endpoint the daemons mount behind -debug-addr:
//
//	/metrics       Prometheus text exposition
//	/metrics.json  expvar-style JSON snapshot (with quantiles)
//	/debug/pprof/  the standard net/http/pprof handlers
//
// The mux is meant for a loopback or otherwise access-controlled listener:
// pprof profiles and metric values are operational data, not public API.
func DebugMux(reg *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = reg.WriteJSON(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ServeDebug starts an HTTP server for DebugMux(reg) on addr and returns
// it listening; the caller shuts it down with (*http.Server).Close. The
// bound address is available as srv.Addr (resolved, so ":0" requests
// report the real port).
func ServeDebug(addr string, reg *Registry) (*http.Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Addr: ln.Addr().String(), Handler: DebugMux(reg)}
	go func() { _ = srv.Serve(ln) }()
	return srv, nil
}

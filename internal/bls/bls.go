// Package bls implements the GDH short signature of Boneh, Lynn and Shacham
// and its Boldyreva threshold adaptation — the two building blocks of the
// paper's mediated GDH signature (Section 5).
//
// The scheme works in any Gap-Diffie-Hellman group; here G1 is the order-q
// subgroup of the supersingular curve and the DDH oracle is the pairing:
// (P, R, h(M), S) is a valid Diffie-Hellman tuple iff ê(P, S) = ê(R, h(M)).
//
// Signatures are single compressed G1 points — the "160 bit signature" the
// paper highlights when comparing SEM→user traffic with 1024-bit mRSA.
package bls

import (
	"errors"
	"fmt"
	"io"
	"math/big"

	"repro/internal/curve"
	"repro/internal/mathx"
	"repro/internal/pairing"
	"repro/internal/parallel"
	"repro/internal/shamir"
)

const domainH = "GDH-SIG-H"

var (
	// ErrInvalidSignature is returned when verification fails.
	ErrInvalidSignature = errors.New("bls: invalid signature")

	// ErrInvalidShare is returned when a partial signature fails its
	// share-verification pairing check.
	ErrInvalidShare = errors.New("bls: invalid signature share")
)

// PublicKey is R = x·P.
type PublicKey struct {
	Pairing *pairing.Params
	R       *curve.Point
}

// PrivateKey holds the signing scalar x.
//
//cryptolint:secret
type PrivateKey struct {
	Public *PublicKey //cryptolint:public (the public key)
	X      *big.Int
}

// GenerateKey samples a fresh GDH key pair.
func GenerateKey(rng io.Reader, pp *pairing.Params) (*PrivateKey, error) {
	x, err := mathx.RandomFieldElement(rng, pp.Q())
	if err != nil {
		return nil, fmt.Errorf("sample signing key: %w", err)
	}
	return KeyFromScalar(pp, x)
}

// KeyFromScalar builds a key pair from an explicit scalar (used by the
// mediated scheme's trusted dealer, which must know both halves' sum).
//
//cryptolint:vartime (offline dealing at the TA; the one-time reduction mod q is not an online path)
func KeyFromScalar(pp *pairing.Params, x *big.Int) (*PrivateKey, error) {
	xm := new(big.Int).Mod(x, pp.Q())
	if xm.Sign() == 0 {
		return nil, fmt.Errorf("bls: signing key must be nonzero mod q")
	}
	return &PrivateKey{
		Public: &PublicKey{Pairing: pp, R: pp.GeneratorMul(xm)},
		X:      xm,
	}, nil
}

// HashMessage is the h(·) oracle mapping messages into G1.
func HashMessage(pp *pairing.Params, msg []byte) (*curve.Point, error) {
	pt, err := pp.Curve().HashToPoint(domainH, msg)
	if err != nil {
		return nil, fmt.Errorf("hash message: %w", err)
	}
	return pt, nil
}

// Sign produces S = x·h(M).
func (k *PrivateKey) Sign(msg []byte) (*curve.Point, error) {
	h, err := HashMessage(k.Public.Pairing, msg)
	if err != nil {
		return nil, err
	}
	return h.ScalarMul(k.X), nil
}

// Verify checks that (P, R, h(M), S) is a Diffie-Hellman tuple:
// ê(P, S) = ê(R, h(M)), evaluated as the single product
// ê(P, S)·ê(−R, h(M)) = 1 so one shared Miller loop and one final
// exponentiation replace two full pairings.
func (pk *PublicKey) Verify(msg []byte, sig *curve.Point) error {
	if sig == nil || sig.IsInfinity() {
		return ErrInvalidSignature
	}
	if !sig.InSubgroup() {
		return fmt.Errorf("%w: signature outside G1", ErrInvalidSignature)
	}
	h, err := HashMessage(pk.Pairing, msg)
	if err != nil {
		return err
	}
	prod, err := pk.Pairing.MultiPair(
		[]*curve.Point{pk.Pairing.Generator(), pk.R.Neg()},
		[]*curve.Point{sig, h},
	)
	if err != nil {
		return err
	}
	if !prod.IsOne() {
		return ErrInvalidSignature
	}
	return nil
}

// BatchVerify checks n signatures under this key with a single pairing
// product: it samples random 64-bit coefficients r_i and tests
//
//	ê(P, Σ r_i·S_i) · ê(−R, Σ r_i·h(M_i)) = 1,
//
// which holds for honest batches by bilinearity and fails except with
// probability 2⁻⁶⁴ per forged member (a forgery must land in the kernel of
// a random linear form). The cost is n raw hash-to-curve maps and 2n small
// scalar multiplications instead of n independent product checks — the
// random-linear-combination batching of Bellare-Garay-Rabin applied to GDH
// tuples. Two amortizations beyond the shared Miller loop: the per-message
// cofactor clearing of h(M_i) = c·T_i is merged into one multiplication at
// the end (Σ r_i·(c·T_i) = c·Σ r_i·T_i), and the r_i are only 64 bits, so
// the per-member scalar multiplications are far cheaper than full-width
// ones. An error identifies a malformed input; ErrInvalidSignature means at
// least one member of the batch is invalid (callers fall back to
// per-signature Verify to locate it).
func (pk *PublicKey) BatchVerify(rng io.Reader, msgs [][]byte, sigs []*curve.Point) error {
	if len(msgs) != len(sigs) {
		return fmt.Errorf("bls: batch has %d messages and %d signatures", len(msgs), len(sigs))
	}
	if len(msgs) == 0 {
		return fmt.Errorf("bls: empty batch")
	}
	cv := pk.Pairing.Curve()

	// Coefficients are drawn up front (rng readers need not be concurrency
	// safe), then member validation and hashing fan out across workers —
	// each index writes only its own slots, and the first error by index
	// wins so the reported member is schedule-independent.
	rs := make([]*big.Int, len(msgs))
	var buf [8]byte
	for i := range rs {
		if _, err := io.ReadFull(rng, buf[:]); err != nil {
			return fmt.Errorf("bls: sample batch coefficient: %w", err)
		}
		r := new(big.Int).SetBytes(buf[:])
		r.Add(r, big.NewInt(1)) // r_i ∈ [1, 2⁶⁴]: a zero coefficient would ignore the member
		rs[i] = r
	}
	tis := make([]*curve.Point, len(msgs)) // raw (uncleared) hash points T_i
	memberErrs := make([]error, len(msgs))
	parallel.Fan(len(msgs), func(i int) {
		sig := sigs[i]
		if sig == nil || sig.IsInfinity() {
			memberErrs[i] = fmt.Errorf("%w: batch member %d", ErrInvalidSignature, i)
			return
		}
		if !sig.InSubgroup() {
			memberErrs[i] = fmt.Errorf("%w: batch member %d outside G1", ErrInvalidSignature, i)
			return
		}
		ti, err := cv.HashToPointUncleared(domainH, msgs[i])
		if err != nil {
			memberErrs[i] = fmt.Errorf("hash message: %w", err)
			return
		}
		tis[i] = ti
	})
	for _, err := range memberErrs {
		if err != nil {
			return err
		}
	}

	// The two aggregations Σ r_i·S_i and Σ r_i·T_i are Pippenger multi-scalar
	// sums; cofactor clearing stays merged into one multiplication at the end.
	sAcc, err := cv.MSM(rs, sigs)
	if err != nil {
		return err
	}
	tAcc, err := cv.MSM(rs, tis)
	if err != nil {
		return err
	}
	hAcc := tAcc.ScalarMul(cv.Cofactor())
	prod, err := pk.Pairing.MultiPair(
		[]*curve.Point{pk.Pairing.Generator(), pk.R.Neg()},
		[]*curve.Point{sAcc, hAcc},
	)
	if err != nil {
		return err
	}
	if !prod.IsOne() {
		return ErrInvalidSignature
	}
	return nil
}

// ThresholdDealer is the trusted authority of the Boldyreva scheme: it
// shares the signing key x among n players with threshold t and publishes
// per-player verification keys R_i = x_i·P.
type ThresholdDealer struct {
	group  *PublicKey
	t, n   int
	shares []shamir.Share
	vks    []*curve.Point
}

// NewThresholdDealer shares a fresh signing key (t, n) ways.
func NewThresholdDealer(rng io.Reader, pp *pairing.Params, t, n int) (*ThresholdDealer, error) {
	if t < 1 || n < t {
		return nil, fmt.Errorf("bls: invalid threshold (t=%d, n=%d)", t, n)
	}
	key, err := GenerateKey(rng, pp)
	if err != nil {
		return nil, err
	}
	poly, err := shamir.NewPolynomial(rng, key.X, pp.Q(), t)
	if err != nil {
		return nil, fmt.Errorf("share signing key: %w", err)
	}
	shares, err := poly.IssueShares(n)
	if err != nil {
		return nil, err
	}
	vks := make([]*curve.Point, n)
	for i, s := range shares {
		vks[i] = pp.GeneratorMul(s.Value)
	}
	return &ThresholdDealer{group: key.Public, t: t, n: n, shares: shares, vks: vks}, nil
}

// GroupKey returns the group public key R = x·P signatures verify against.
func (d *ThresholdDealer) GroupKey() *PublicKey { return d.group }

// Threshold returns t.
func (d *ThresholdDealer) Threshold() int { return d.t }

// Players returns n.
func (d *ThresholdDealer) Players() int { return d.n }

// PlayerShare returns player i's (1-based) secret share x_i.
func (d *ThresholdDealer) PlayerShare(i int) (shamir.Share, error) {
	if i < 1 || i > d.n {
		return shamir.Share{}, fmt.Errorf("bls: player index %d out of range 1..%d", i, d.n)
	}
	return shamir.Share{Index: i, Value: new(big.Int).Set(d.shares[i-1].Value)}, nil
}

// VerificationKey returns the public key R_i = x_i·P of player i.
func (d *ThresholdDealer) VerificationKey(i int) (*curve.Point, error) {
	if i < 1 || i > d.n {
		return nil, fmt.Errorf("bls: player index %d out of range 1..%d", i, d.n)
	}
	return d.vks[i-1], nil
}

// SignShare produces player i's partial signature S_i = x_i·h(M).
func SignShare(pp *pairing.Params, share shamir.Share, msg []byte) (shamir.PointShare, error) {
	h, err := HashMessage(pp, msg)
	if err != nil {
		return shamir.PointShare{}, err
	}
	return shamir.PointShare{Index: share.Index, Value: h.ScalarMul(share.Value)}, nil
}

// VerifyShare checks a partial signature against the player's verification
// key: ê(P, S_i) = ê(R_i, h(M)), as the one-call product
// ê(P, S_i)·ê(−R_i, h(M)) = 1.
func VerifyShare(pp *pairing.Params, vk *curve.Point, msg []byte, partial shamir.PointShare) error {
	h, err := HashMessage(pp, msg)
	if err != nil {
		return err
	}
	prod, err := pp.MultiPair(
		[]*curve.Point{pp.Generator(), vk.Neg()},
		[]*curve.Point{partial.Value, h},
	)
	if err != nil {
		return err
	}
	if !prod.IsOne() {
		return fmt.Errorf("%w: player %d", ErrInvalidShare, partial.Index)
	}
	return nil
}

// Combine interpolates t valid partial signatures into the group signature
// S = Σ λ_i·S_i, which verifies under the group key like an ordinary GDH
// signature.
func Combine(pp *pairing.Params, partials []shamir.PointShare, t int) (*curve.Point, error) {
	sig, err := shamir.ReconstructPoint(partials, t, pp.Q())
	if err != nil {
		return nil, fmt.Errorf("combine signature shares: %w", err)
	}
	return sig, nil
}

package core

import (
	"testing"

	"repro/internal/curve"
)

// mustShare computes a plain decryption share, failing the test on the
// (never-expected) internal pairing error path.
func mustShare(t testing.TB, p *ThresholdParams, ks *KeyShare, u *curve.Point) *DecryptionShare {
	t.Helper()
	s, err := p.ComputeShare(ks, u)
	if err != nil {
		t.Fatalf("ComputeShare: %v", err)
	}
	return s
}

// Amortized pairing engine: the Jacobian Miller-loop step machinery shared
// by Pair, MultiPair and FixedPair.
//
// Every Miller-loop variant in this package walks the same addition chain —
// the binary expansion of the group order q — and differs only in what it
// does with the line function of each step. The line through the running
// point V (and its tangent, for doublings) evaluated at the distorted point
// φ(Q) = (−x_Q, i·y_Q) always has the shape
//
//	l(φQ) = (a + b·x_Q) + (c·y_Q)·i,   a, b, c ∈ F_p,
//
// where (a, b, c) depend only on V and P — not on Q. millerVars computes
// these generic coefficients while advancing V with the inversion-free
// Jacobian formulas of millerJacobian (see pairing.go for their derivation);
// each step's overall F_p* scale is arbitrary because the final
// exponentiation (p²−1)/q annihilates F_p*.
//
// Three consumers:
//
//   - Pair feeds (a, b, c) straight into the accumulator (pairing.go);
//   - MultiPair runs n walks in lock-step sharing one accumulator squaring
//     per iteration and a single final exponentiation;
//   - FixedPair runs the walk once at construction, normalizes each line by
//     1/c (another F_p* scale) to the two-coefficient form
//     (α·x_Q + β) + y_Q·i, and replays the recorded program against any
//     second argument with no point arithmetic at all.
package pairing

import (
	"fmt"
	"math/big"

	"repro/internal/curve"
	"repro/internal/gf"
)

// millerVars is the running state of one Miller-loop traversal: the affine
// base P, the running point V in Jacobian coordinates, and scratch storage
// reused across steps.
type millerVars struct {
	p       *big.Int // field characteristic
	xP, yP  *big.Int // affine base point P
	X, Y, Z *big.Int // running point V (Jacobian)

	t1, t2, t3, t4, t5, t6 *big.Int
}

func newMillerVars(p *big.Int, pt *curve.Point) *millerVars {
	return &millerVars{
		p:  p,
		xP: pt.X(),
		yP: pt.Y(),
		X:  pt.X(),
		Y:  pt.Y(),
		Z:  big.NewInt(1),
		t1: new(big.Int), t2: new(big.Int), t3: new(big.Int),
		t4: new(big.Int), t5: new(big.Int), t6: new(big.Int),
	}
}

// doubleStep advances V ← 2V and writes the tangent-line coefficients into
// (a, b, c). It reports whether a line was produced — vertical tangents
// (2-torsion, unreachable from the odd-order subgroup) and V = O contribute
// only an F_p* factor and emit nothing.
//
// Derivation (V = (X, Y, Z), M = 3X² + Z⁴, Z₃ = 2YZ, tangent scaled by
// 2YZ³): l = [M·X − 2Y² + M·Z²·x_Q] + [Z₃·Z²·y_Q]·i, so
// a = M·X − 2Y², b = M·Z², c = Z₃·Z².
func (m *millerVars) doubleStep(a, b, c *big.Int) bool {
	if m.Z.Sign() == 0 {
		return false
	}
	if m.Y.Sign() == 0 {
		// 2-torsion: vertical tangent, 2V = O.
		m.Z.SetInt64(0)
		return false
	}
	p := m.p
	xx := m.t1.Mul(m.X, m.X)
	xx.Mod(xx, p)
	yy := m.t2.Mul(m.Y, m.Y)
	yy.Mod(yy, p)
	zz := m.t3.Mul(m.Z, m.Z)
	zz.Mod(zz, p)
	s := m.t4.Mul(m.X, yy) // S = 4XY²
	s.Lsh(s, 2)
	s.Mod(s, p)
	mm := m.t5.Mul(zz, zz) // M = 3X² + Z⁴
	mm.Add(mm, xx)
	mm.Add(mm, xx)
	mm.Add(mm, xx)
	mm.Mod(mm, p)

	// a = M·X − 2Y², b = M·Z² (X still the pre-doubling coordinate).
	a.Mul(mm, m.X)
	a.Sub(a, yy)
	a.Sub(a, yy)
	a.Mod(a, p)
	b.Mul(mm, zz)
	b.Mod(b, p)

	// Z₃ = 2YZ (before Y is clobbered), then c = Z₃·Z².
	m.Z.Mul(m.Y, m.Z)
	m.Z.Lsh(m.Z, 1)
	m.Z.Mod(m.Z, p)
	c.Mul(m.Z, zz)
	c.Mod(c, p)

	// X₃ = M² − 2S, Y₃ = M·(S − X₃) − 8Y⁴.
	m.X.Mul(mm, mm)
	m.X.Sub(m.X, s)
	m.X.Sub(m.X, s)
	m.X.Mod(m.X, p)
	yyyy := m.t6.Mul(yy, yy)
	yyyy.Lsh(yyyy, 3)
	m.Y.Sub(s, m.X)
	m.Y.Mul(m.Y, mm)
	m.Y.Sub(m.Y, yyyy)
	m.Y.Mod(m.Y, p)
	return true
}

// addStep advances V ← V + P and writes the chord-line coefficients into
// (a, b, c), reporting whether a line was produced. V = O restarts the walk
// at P; V = −P yields the vertical chord (skipped, V becomes O); V = P
// degenerates to a tangent doubling. Only the last case and the generic
// chord emit a line.
//
// Generic chord (H = x_P·Z² − X, R = y_P·Z³ − Y, Z₃ = ZH, chord scaled by
// Z₃): l = [R·x_P − Z₃·y_P + R·x_Q] + [Z₃·y_Q]·i, so a = R·x_P − Z₃·y_P,
// b = R, c = Z₃.
func (m *millerVars) addStep(a, b, c *big.Int) bool {
	if m.Z.Sign() == 0 {
		// V = O: the "line" through O and P is the vertical at P, an F_p*
		// factor — restart at P.
		m.X.Set(m.xP)
		m.Y.Set(m.yP)
		m.Z.SetInt64(1)
		return false
	}
	p := m.p
	zz := m.t1.Mul(m.Z, m.Z)
	zz.Mod(zz, p)
	u2 := m.t2.Mul(m.xP, zz)
	u2.Mod(u2, p)
	s2 := m.t3.Mul(m.yP, zz)
	s2.Mul(s2, m.Z)
	s2.Mod(s2, p)
	h := u2.Sub(u2, m.X) // H = x_P·Z² − X
	h.Mod(h, p)
	r := s2.Sub(s2, m.Y) // R = y_P·Z³ − Y
	r.Mod(r, p)

	switch {
	case h.Sign() == 0 && r.Sign() == 0:
		// V = P: the chord degenerates to the tangent at P, so this addition
		// is a doubling from the affine representative (x_P, y_P), where
		// M = 3x_P² + 1 and the line scale is Z₃ = 2y_P. (Unreachable for
		// odd-order P — the running multiplier never revisits 1 — kept so the
		// walk matches the affine oracle on arbitrary curve points.)
		yy := m.t4.Mul(m.yP, m.yP)
		yy.Mod(yy, p)
		mm := m.t5.Mul(m.xP, m.xP)
		mm.Mod(mm, p)
		m.t6.Set(mm)
		mm.Lsh(mm, 1)
		mm.Add(mm, m.t6)
		mm.Add(mm, bigOne) // M = 3x_P² + 1 (Z = 1)
		mm.Mod(mm, p)
		a.Mul(mm, m.xP)
		a.Sub(a, yy)
		a.Sub(a, yy)
		a.Mod(a, p)
		b.Set(mm)
		m.Z.Lsh(m.yP, 1) // Z₃ = 2y_P
		m.Z.Mod(m.Z, p)
		c.Set(m.Z)
		s := m.t6.Mul(m.xP, yy) // S = 4·x_P·y_P²
		s.Lsh(s, 2)
		s.Mod(s, p)
		m.X.Mul(mm, mm)
		m.X.Sub(m.X, s)
		m.X.Sub(m.X, s)
		m.X.Mod(m.X, p)
		yyyy := m.t4.Mul(yy, yy) // aliasing-safe: big.Int.Mul squares in place
		yyyy.Lsh(yyyy, 3)
		m.Y.Sub(s, m.X)
		m.Y.Mul(m.Y, mm)
		m.Y.Sub(m.Y, yyyy)
		m.Y.Mod(m.Y, p)
		return true
	case h.Sign() == 0:
		// V = −P: vertical line, an F_p* factor — V + P = O.
		m.Z.SetInt64(0)
		return false
	default:
		hh := m.t4.Mul(h, h)
		hh.Mod(hh, p)
		hhh := m.t5.Mul(hh, h)
		hhh.Mod(hhh, p)
		xh2 := m.t6.Mul(m.X, hh)
		xh2.Mod(xh2, p)

		m.Z.Mul(m.Z, h) // Z₃ = Z·H
		m.Z.Mod(m.Z, p)

		a.Mul(r, m.xP)
		b.Mul(m.Z, m.yP) // scratch use of b for Z₃·y_P
		a.Sub(a, b)
		a.Mod(a, p)
		b.Set(r)
		c.Set(m.Z)

		m.X.Mul(r, r)
		m.X.Sub(m.X, hhh)
		m.X.Sub(m.X, xh2)
		m.X.Sub(m.X, xh2)
		m.X.Mod(m.X, p)
		xh2.Sub(xh2, m.X)
		xh2.Mul(xh2, r)
		hhh.Mul(hhh, m.Y)
		m.Y.Sub(xh2, hhh)
		m.Y.Mod(m.Y, p)
		return true
	}
}

var bigOne = big.NewInt(1)

// MultiPair computes the pairing product ∏ᵢ ê(Pᵢ, Qᵢ) with one shared
// Miller loop and a single final exponentiation. The accumulator squaring —
// one per loop iteration regardless of n — and the final exponentiation are
// shared across all pairs, so n-pair products cost far less than n calls to
// Pair; product-form checks (BLS verification, batched share proofs) are the
// intended callers. Pairs with an infinity member contribute the identity,
// exactly as in Pair; an empty product is the identity. The shared squaring
// is sound because ∏fᵢ² = (∏fᵢ)²: the per-pair Miller accumulators can be
// folded into one before squaring.
func (pp *Params) MultiPair(ps, qs []*curve.Point) (*GT, error) {
	if len(ps) != len(qs) {
		return nil, fmt.Errorf("pairing: MultiPair got %d first arguments and %d second", len(ps), len(qs))
	}
	fld := pp.field
	p := pp.curve.P()
	type livePair struct {
		mv     *millerVars
		xQ, yQ *big.Int
	}
	live := make([]livePair, 0, len(ps))
	for i := range ps {
		if ps[i] == nil || qs[i] == nil {
			return nil, fmt.Errorf("pairing: MultiPair pair %d is nil", i)
		}
		if ps[i].IsInfinity() || qs[i].IsInfinity() {
			continue // ê(P, O) = ê(O, Q) = 1
		}
		live = append(live, livePair{
			mv: newMillerVars(p, ps[i]),
			xQ: qs[i].X(),
			yQ: qs[i].Y(),
		})
	}
	if len(live) == 0 {
		return pp.One(), nil
	}

	f := fld.One()
	line := fld.One()
	a, b, c := new(big.Int), new(big.Int), new(big.Int)
	lr, li := new(big.Int), new(big.Int)
	mulLine := func(lp *livePair) {
		lr.Mul(b, lp.xQ)
		lr.Add(lr, a)
		lr.Mod(lr, p)
		li.Mul(c, lp.yQ)
		li.Mod(li, p)
		f.Mul(f, fld.SetElement(line, lr, li))
	}
	n := pp.curve.Q()
	for i := n.BitLen() - 2; i >= 0; i-- {
		f.Square(f) // shared: (∏fⱼ)² = ∏fⱼ²
		for j := range live {
			if live[j].mv.doubleStep(a, b, c) {
				mulLine(&live[j])
			}
		}
		if n.Bit(i) == 1 {
			for j := range live {
				if live[j].mv.addStep(a, b, c) {
					mulLine(&live[j])
				}
			}
		}
	}
	v, err := pp.finalExp(f)
	if err != nil {
		return nil, err
	}
	return &GT{v: v, q: pp.curve.Q()}, nil
}

// fixedStep is one replayable instruction of a FixedPair program: square the
// accumulator (doubling steps), then — unless the step's line was vertical —
// multiply by (alpha·x_Q + beta) + y_Q·i.
type fixedStep struct {
	square      bool
	alpha, beta *big.Int // nil alpha ⇒ no line this step
}

// FixedPair is a fixed-first-argument pairing evaluator: NewFixedPair walks
// the Miller loop of ê(P, ·) once, records every line's coefficients
// normalized to the monic form (α·x_Q + β) + y_Q·i (the 1/c scale is another
// F_p* factor the final exponentiation kills), and Pair replays the program
// against any second argument. A replay performs no point arithmetic and no
// modular inversions — one multiplication per line evaluation plus the
// accumulator update — which is where the ≥2× speedup over Pair comes from.
//
// The loop structure depends only on P and the group order, so the program
// is valid for every Q. Immutable and safe for concurrent use after
// construction. Memory: two field elements per recorded line, ~2·|q| lines.
type FixedPair struct {
	pp    *Params
	steps []fixedStep
}

// NewFixedPair precomputes the Miller-loop program for ê(p1, ·). The fixed
// argument must be a non-infinity point of the order-q subgroup — the same
// precondition under which the recorded program's line normalization is
// well-defined (every chord/tangent in the walk is non-degenerate).
// Construction costs about one Miller loop plus a single batched inversion.
func (pp *Params) NewFixedPair(p1 *curve.Point) (*FixedPair, error) {
	if p1 == nil || p1.IsInfinity() {
		return nil, fmt.Errorf("pairing: cannot precompute a Miller program for the point at infinity")
	}
	if !p1.InSubgroup() {
		return nil, fmt.Errorf("pairing: fixed pairing argument escapes the order-q subgroup")
	}
	p := pp.curve.P()
	mv := newMillerVars(p, p1)
	n := pp.curve.Q()

	steps := make([]fixedStep, 0, 2*n.BitLen())
	// Raw per-line coefficients, normalized after the walk with one batched
	// inversion of the c column.
	var as, bs, cs []*big.Int
	record := func(square bool, produced bool, a, b, c *big.Int) {
		st := fixedStep{square: square}
		if produced {
			as = append(as, a)
			bs = append(bs, b)
			cs = append(cs, c)
			st.alpha = b // placeholder; rewritten below
		}
		steps = append(steps, st)
	}
	for i := n.BitLen() - 2; i >= 0; i-- {
		a, b, c := new(big.Int), new(big.Int), new(big.Int)
		record(true, mv.doubleStep(a, b, c), a, b, c)
		if n.Bit(i) == 1 {
			a, b, c = new(big.Int), new(big.Int), new(big.Int)
			record(false, mv.addStep(a, b, c), a, b, c)
		}
	}

	invs, err := batchInvert(cs, p)
	if err != nil {
		// Impossible for subgroup points: every recorded line's scale
		// c ∈ {2YZ³, Z·H·(…)} is nonzero off the degenerate cases, which emit
		// no line. Surfaced for corrupted inputs rather than silently caching
		// a wrong program.
		return nil, fmt.Errorf("pairing: degenerate line in fixed-argument precomputation: %w", err)
	}
	li := 0
	for i := range steps {
		if steps[i].alpha == nil {
			continue
		}
		alpha := bs[li].Mul(bs[li], invs[li])
		alpha.Mod(alpha, p)
		beta := as[li].Mul(as[li], invs[li])
		beta.Mod(beta, p)
		steps[i].alpha, steps[i].beta = alpha, beta
		li++
	}
	return &FixedPair{pp: pp, steps: steps}, nil
}

// Pair computes ê(P, q1) for the fixed P by replaying the precomputed line
// program, bit-identical to Params.Pair(P, q1). ê(P, O) = 1.
func (fp *FixedPair) Pair(q1 *curve.Point) (*GT, error) {
	pp := fp.pp
	if q1.IsInfinity() {
		return pp.One(), nil
	}
	fld := pp.field
	p := pp.curve.P()
	xQ, yQ := q1.X(), q1.Y()

	f := fld.One()
	line := fld.One()
	re := new(big.Int)
	for i := range fp.steps {
		st := &fp.steps[i]
		if st.square {
			f.Square(f)
		}
		if st.alpha == nil {
			continue
		}
		re.Mul(st.alpha, xQ)
		re.Add(re, st.beta)
		re.Mod(re, p)
		f.Mul(f, fld.SetElement(line, re, yQ))
	}
	v, err := pp.finalExp(f)
	if err != nil {
		return nil, err
	}
	return &GT{v: v, q: pp.curve.Q()}, nil
}

// Lines returns the number of recorded line evaluations (memory
// diagnostics: two field elements are stored per line).
func (fp *FixedPair) Lines() int {
	n := 0
	for i := range fp.steps {
		if fp.steps[i].alpha != nil {
			n++
		}
	}
	return n
}

// batchInvert computes the modular inverses of xs with Montgomery's
// simultaneous-inversion trick: one ModInverse plus 3(n−1) multiplications.
// It errors if any element is zero (or shares a factor with p).
func batchInvert(xs []*big.Int, p *big.Int) ([]*big.Int, error) {
	if len(xs) == 0 {
		return nil, nil
	}
	prefix := make([]*big.Int, len(xs))
	acc := big.NewInt(1)
	for i, x := range xs {
		if x.Sign() == 0 {
			return nil, fmt.Errorf("element %d is zero", i)
		}
		prefix[i] = new(big.Int).Set(acc)
		acc.Mul(acc, x)
		acc.Mod(acc, p)
	}
	accInv := new(big.Int).ModInverse(acc, p)
	if accInv == nil {
		return nil, fmt.Errorf("product is not invertible mod p")
	}
	out := make([]*big.Int, len(xs))
	for i := len(xs) - 1; i >= 0; i-- {
		inv := new(big.Int).Mul(accInv, prefix[i])
		inv.Mod(inv, p)
		out[i] = inv
		accInv.Mul(accInv, xs[i])
		accInv.Mod(accInv, p)
	}
	return out, nil
}

// expUnitary computes g^e for a unitary g (norm 1 — the output of the final
// exponentiation's easy part) with 4-bit fixed windows: each window costs
// four cheap unitary squarings plus at most one general multiplication,
// against the bit-at-a-time square-and-multiply of the generic gf exponent
// path.
func expUnitary(fld *gf.Field, g *gf.Element, e *big.Int) *gf.Element {
	bits := e.BitLen()
	if bits == 0 {
		return fld.One()
	}
	// Odd and even powers g¹..g¹⁵; unitary elements stay unitary under
	// multiplication, so every intermediate remains eligible for
	// SquareUnitary.
	var tab [15]*gf.Element
	tab[0] = g.Copy()
	for i := 1; i < 15; i++ {
		tab[i] = new(gf.Element).Mul(tab[i-1], g)
	}
	windows := (bits + 3) / 4
	out := fld.One()
	started := false
	for w := windows - 1; w >= 0; w-- {
		if started {
			out.SquareUnitary(out)
			out.SquareUnitary(out)
			out.SquareUnitary(out)
			out.SquareUnitary(out)
		}
		d := 0
		for b := 3; b >= 0; b-- {
			d <<= 1
			if e.Bit(4*w+b) == 1 {
				d |= 1
			}
		}
		if d != 0 {
			if started {
				out.Mul(out, tab[d-1])
			} else {
				out.Set(tab[d-1])
				started = true
			}
		}
	}
	if !started {
		return fld.One()
	}
	return out
}

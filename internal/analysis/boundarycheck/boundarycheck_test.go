package boundarycheck_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/boundarycheck"
)

func TestBoundaryCheck(t *testing.T) {
	analysistest.Run(t, "testdata", boundarycheck.Analyzer,
		"repro/internal/sem",
		"repro/internal/cluster",
		"repro/internal/core",
		"repro/internal/wire",
	)
}

// Package boundarycheck enforces that network-facing packages decode wire
// bytes only through the validated constructors in repro/internal/wire.
//
// A []byte arriving over a SEM or cluster connection is attacker-controlled:
// decoding it with a raw constructor (curve.Unmarshal without a subgroup
// check routed through wire, big.Int.SetBytes without a range check,
// GTFromBytes without an order-q membership check) admits small-subgroup and
// invalid-element attacks against the mediated and threshold schemes. The
// wire package wraps every decoder with the appropriate validation, so the
// rule is purely structural: in a package whose import path contains a sem,
// cluster or cmd element, calls to the raw decoders are findings. The wire
// package itself is exempt — it is the sanctioned implementation site.
package boundarycheck

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the boundarycheck checker.
var Analyzer = &analysis.Analyzer{
	Name: "boundarycheck",
	Doc:  "require wire's validated decoders for []byte→element conversions in network-facing packages",
	Run:  run,
}

// rawDecoder describes one banned decode entry point and its sanctioned
// replacement.
type rawDecoder struct {
	pkgSuffix string // import-path suffix of the defining package
	method    string
	instead   string
}

var rawDecoders = []rawDecoder{
	{"internal/curve", "Unmarshal", "wire.UnmarshalG1"},
	{"internal/pairing", "GTFromBytes", "wire.UnmarshalGT"},
	{"internal/gf", "ElementFromBytes", "wire.UnmarshalGT"},
	{"math/big", "SetBytes", "wire.UnmarshalScalar"},
}

func run(pass *analysis.Pass) error {
	if !networkFacing(pass.Pkg.Path) || exempt(pass.Pkg.Path) {
		return nil
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.Pkg.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			for _, d := range rawDecoders {
				if fn.Name() == d.method && pathMatches(fn.Pkg().Path(), d.pkgSuffix) {
					pass.Reportf(call.Pos(), "raw %s.%s decode at a network boundary; use %s", fn.Pkg().Name(), d.method, d.instead)
				}
			}
			return true
		})
	}
	return nil
}

// networkFacing reports whether the import path names a package that parses
// peer-supplied bytes: the sem and cluster protocol packages and everything
// under cmd/.
func networkFacing(path string) bool {
	for _, seg := range strings.Split(path, "/") {
		switch seg {
		case "sem", "cluster", "cmd":
			return true
		}
	}
	return false
}

// exempt reports whether the package is a sanctioned decoder implementation.
func exempt(path string) bool {
	return path == "wire" || strings.HasSuffix(path, "/wire")
}

func pathMatches(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}
